//! Per-function fact extraction over the token stream: lock acquisitions and
//! guard lifetimes, env-layer barrier calls, panic sites, plain calls (for
//! cross-function lock propagation), `#[cfg(test)]` regions, and
//! `MutexGuard::unlocked` spans.
//!
//! The extractor is lexical, not a parser: it tracks brace scopes, `let`
//! statements, and bracket matching, which is enough to recover guard
//! extents for straight-line Rust of the style this workspace uses. Known
//! approximations are documented in DESIGN.md §10.

use std::collections::HashMap;

use crate::lexer::{lex, Tok, Token};

/// Methods whose zero-argument calls are lock acquisitions.
const ACQUIRE_METHODS: [&str; 3] = ["lock", "read", "write"];
/// Env-layer barrier/I-O methods watched by rules L1 and L4.
const BARRIER_METHODS: [&str; 4] = ["sync", "ordering_barrier", "append", "add_record"];
/// Panic-family suffix methods and macros watched by rule L3.
const PANIC_METHODS: [&str; 2] = ["unwrap", "expect"];
const PANIC_MACROS: [&str; 4] = ["panic", "unreachable", "todo", "unimplemented"];
const CALL_KEYWORDS: [&str; 7] = ["if", "while", "for", "match", "loop", "return", "fn"];

/// A lock guard live at some program point.
#[derive(Debug, Clone)]
pub struct Held {
    /// The `let` binding holding the guard.
    pub binding: String,
    /// The acquisition receiver (`state` in `self.state.lock()`).
    pub receiver: String,
    /// Line of the acquisition.
    pub acquired_line: u32,
}

/// One extracted event, in source order within a function.
#[derive(Debug, Clone)]
pub enum Event {
    /// A `receiver.lock()` / `.read()` / `.write()` acquisition. `held` is
    /// the guard set at the moment of acquisition (excluding this one).
    Acquire {
        /// Receiver identifier at the call site.
        receiver: String,
        /// Source line of the acquisition.
        line: u32,
        /// Guards live at this point (excluding this one).
        held: Vec<Held>,
    },
    /// An env-layer barrier call (`.sync(` / `.ordering_barrier(` /
    /// `.append(` / `.add_record(`).
    Barrier {
        /// Barrier method name (`sync`, `append`, ...).
        method: String,
        /// Receiver identifier at the call site.
        receiver: String,
        /// Source line of the call.
        line: u32,
        /// Whether the call sits inside a `MutexGuard::unlocked` closure.
        in_unlocked: bool,
        /// Guards live at this point.
        held: Vec<Held>,
    },
    /// Any other call, recorded for cross-function lock propagation.
    Call {
        /// Callee identifier.
        name: String,
        /// Source line of the call.
        line: u32,
        /// Guards live at this point.
        held: Vec<Held>,
    },
    /// `unwrap`/`expect`/`panic!`-family site.
    Panic {
        /// What was called (`unwrap`, `expect`, `panic!`, ...).
        what: String,
        /// Source line of the call.
        line: u32,
    },
}

/// Facts for one function.
#[derive(Debug)]
pub struct FnFacts {
    /// Bare function name.
    pub name: String,
    /// Line of the `fn` keyword.
    pub line: u32,
    /// Inside a `#[cfg(test)]` region or under `#[test]`.
    pub in_test: bool,
    /// Extracted events in source order.
    pub events: Vec<Event>,
}

/// A named-lock registration: `named_mutex("core.state", ..)`,
/// `named_rwlock(..)`, or `Mutex::named("...", ..)` with a literal name.
#[derive(Debug, Clone)]
pub struct NamedLock {
    /// The canonical lock name passed as the first argument.
    pub name: String,
    /// Source line of the name literal.
    pub line: u32,
    /// Inside a `#[cfg(test)]` region or under `#[test]`.
    pub in_test: bool,
}

/// Facts for one file.
pub struct FileFacts {
    /// Path as given to [`extract`].
    pub path: String,
    /// Per-function facts in source order.
    pub functions: Vec<FnFacts>,
    /// Named-lock constructor sites (rule L5 cross-checks these against the
    /// declared `[order].locks`).
    pub named_locks: Vec<NamedLock>,
    /// Line → rules allowed by `// bolt-lint: allow(rule, ...)` comments.
    pub allows: HashMap<u32, Vec<String>>,
}

impl FileFacts {
    /// Is `rule` allowed at `line` (same line or the line above)?
    pub fn allowed(&self, rule: &str, line: u32) -> bool {
        [line, line.saturating_sub(1)].iter().any(|l| {
            self.allows
                .get(l)
                .is_some_and(|rules| rules.iter().any(|r| r == rule))
        })
    }
}

/// Extract facts from one source file.
pub fn extract(path: &str, src: &str) -> FileFacts {
    let lexed = lex(src);
    let toks = &lexed.tokens;

    let allows = parse_allows(&lexed.comments);
    let (close_of, open_of) = match_brackets(toks);
    let test_regions = find_test_regions(toks, &close_of);
    let unlocked_spans = find_unlocked_spans(toks, &close_of);
    let fns = find_functions(toks, &close_of);

    let mut functions = Vec::new();
    for f in &fns {
        // Token ranges of other functions nested strictly inside this body
        // are theirs, not ours.
        let nested: Vec<(usize, usize)> = fns
            .iter()
            .filter(|g| g.body_start > f.body_start && g.body_end <= f.body_end)
            .map(|g| (g.body_start, g.body_end))
            .collect();
        let in_test = test_regions
            .iter()
            .any(|&(s, e)| f.body_start >= s && f.body_end <= e);
        let events = extract_events(
            toks,
            f.body_start,
            f.body_end,
            &nested,
            &unlocked_spans,
            &open_of,
        );
        functions.push(FnFacts {
            name: f.name.clone(),
            line: f.line,
            in_test,
            events,
        });
    }

    let named_locks = find_named_locks(toks, &test_regions);

    FileFacts {
        path: path.to_string(),
        functions,
        named_locks,
        allows,
    }
}

/// Named-lock constructor sites: `named_mutex("...", ..)` /
/// `named_rwlock("...", ..)` anywhere, or `::named("...", ..)` (the tracked
/// constructors). Calls whose first argument is not a string literal (e.g.
/// the forwarding `Mutex::named(name, value)` inside `named_mutex` itself)
/// register nothing.
fn find_named_locks(toks: &[Token], test_regions: &[(usize, usize)]) -> Vec<NamedLock> {
    let mut out = Vec::new();
    for i in 0..toks.len() {
        let Some(ident) = ident_at(toks, i) else {
            continue;
        };
        let is_ctor = ident == "named_mutex"
            || ident == "named_rwlock"
            || (ident == "named"
                && i >= 2
                && punct_at(toks, i - 1) == Some(':')
                && punct_at(toks, i - 2) == Some(':'));
        if !is_ctor || punct_at(toks, i + 1) != Some('(') {
            continue;
        }
        if let Some(Tok::Lit(name)) = toks.get(i + 2).map(|t| &t.tok) {
            out.push(NamedLock {
                name: name.clone(),
                line: toks[i + 2].line,
                in_test: test_regions.iter().any(|&(s, e)| i >= s && i < e),
            });
        }
    }
    out
}

fn parse_allows(comments: &[(u32, String)]) -> HashMap<u32, Vec<String>> {
    let mut allows: HashMap<u32, Vec<String>> = HashMap::new();
    for (line, text) in comments {
        let Some(pos) = text.find("bolt-lint:") else {
            continue;
        };
        let rest = text[pos + "bolt-lint:".len()..].trim_start();
        let Some(list) = rest
            .strip_prefix("allow(")
            .and_then(|r| r.split(')').next())
        else {
            continue;
        };
        allows
            .entry(*line)
            .or_default()
            .extend(list.split(',').map(|r| r.trim().to_string()));
    }
    allows
}

/// Match `(`/`)`, `{`/`}` and `[`/`]` pairs. Returns (open→close, close→open).
fn match_brackets(toks: &[Token]) -> (HashMap<usize, usize>, HashMap<usize, usize>) {
    let mut close_of = HashMap::new();
    let mut open_of = HashMap::new();
    let mut stack: Vec<(char, usize)> = Vec::new();
    for (i, t) in toks.iter().enumerate() {
        if let Tok::Punct(c) = t.tok {
            match c {
                '(' | '{' | '[' => stack.push((c, i)),
                ')' | '}' | ']' => {
                    let want = match c {
                        ')' => '(',
                        '}' => '{',
                        _ => '[',
                    };
                    // Pop to the matching opener, tolerating imbalance.
                    while let Some((oc, oi)) = stack.pop() {
                        if oc == want {
                            close_of.insert(oi, i);
                            open_of.insert(i, oi);
                            break;
                        }
                    }
                }
                _ => {}
            }
        }
    }
    (close_of, open_of)
}

fn ident_at(toks: &[Token], i: usize) -> Option<&str> {
    match toks.get(i).map(|t| &t.tok) {
        Some(Tok::Ident(s)) => Some(s),
        _ => None,
    }
}

fn punct_at(toks: &[Token], i: usize) -> Option<char> {
    match toks.get(i).map(|t| &t.tok) {
        Some(Tok::Punct(c)) => Some(*c),
        _ => None,
    }
}

/// Token-index ranges covered by `#[cfg(test)]` / `#[test]` items.
fn find_test_regions(toks: &[Token], close_of: &HashMap<usize, usize>) -> Vec<(usize, usize)> {
    let mut regions = Vec::new();
    let mut i = 0;
    while i < toks.len() {
        if punct_at(toks, i) == Some('#') && punct_at(toks, i + 1) == Some('[') {
            let Some(&attr_end) = close_of.get(&(i + 1)) else {
                i += 1;
                continue;
            };
            let mut has_cfg = false;
            let mut has_test = false;
            for j in i + 2..attr_end {
                match ident_at(toks, j) {
                    Some("cfg") => has_cfg = true,
                    Some("test") => has_test = true,
                    _ => {}
                }
            }
            let only_test = attr_end == i + 3 && ident_at(toks, i + 2) == Some("test");
            if (has_cfg && has_test) || only_test {
                // Skip any further attributes, then cover the following item.
                let mut j = attr_end + 1;
                while punct_at(toks, j) == Some('#') && punct_at(toks, j + 1) == Some('[') {
                    match close_of.get(&(j + 1)) {
                        Some(&e) => j = e + 1,
                        None => break,
                    }
                }
                // Item extends to its first top-level `{ ... }` or `;`.
                let mut k = j;
                while k < toks.len() {
                    match toks[k].tok {
                        Tok::Punct('{') => {
                            let end = close_of.get(&k).copied().unwrap_or(toks.len() - 1);
                            regions.push((i, end + 1));
                            i = end;
                            break;
                        }
                        Tok::Punct(';') => {
                            regions.push((i, k + 1));
                            i = k;
                            break;
                        }
                        _ => k += 1,
                    }
                }
            }
            i = i.max(attr_end) + 1;
            continue;
        }
        i += 1;
    }
    regions
}

/// Paren spans of `MutexGuard::unlocked(...)` / `TrackedMutexGuard::unlocked(...)`
/// calls, inside which rule L1 does not fire (the guard is released).
fn find_unlocked_spans(toks: &[Token], close_of: &HashMap<usize, usize>) -> Vec<(usize, usize)> {
    let mut spans = Vec::new();
    for i in 0..toks.len() {
        let Some(name) = ident_at(toks, i) else {
            continue;
        };
        if (name == "MutexGuard" || name == "TrackedMutexGuard")
            && punct_at(toks, i + 1) == Some(':')
            && punct_at(toks, i + 2) == Some(':')
            && ident_at(toks, i + 3) == Some("unlocked")
            && punct_at(toks, i + 4) == Some('(')
        {
            if let Some(&end) = close_of.get(&(i + 4)) {
                spans.push((i + 4, end));
            }
        }
    }
    spans
}

struct FnSpan {
    name: String,
    line: u32,
    body_start: usize,
    body_end: usize, // exclusive
}

/// Locate every `fn name ... { body }` at any nesting depth.
fn find_functions(toks: &[Token], close_of: &HashMap<usize, usize>) -> Vec<FnSpan> {
    let mut fns = Vec::new();
    let mut i = 0;
    while i < toks.len() {
        if ident_at(toks, i) == Some("fn") {
            if let Some(name) = ident_at(toks, i + 1) {
                let name = name.to_string();
                let line = toks[i].line;
                // Find the parameter list `(`, skipping generics.
                let mut j = i + 2;
                let mut angle = 0i32;
                let params = loop {
                    match toks.get(j).map(|t| &t.tok) {
                        Some(Tok::Punct('<')) => angle += 1,
                        Some(Tok::Punct('>')) => angle -= 1,
                        Some(Tok::Punct('(')) if angle <= 0 => break Some(j),
                        Some(Tok::Punct(';')) | Some(Tok::Punct('{')) | None => break None,
                        _ => {}
                    }
                    j += 1;
                };
                if let Some(p) = params {
                    if let Some(&pend) = close_of.get(&p) {
                        // Body is the first `{` before any `;` after params.
                        let mut k = pend + 1;
                        while k < toks.len() {
                            match toks[k].tok {
                                Tok::Punct('{') => {
                                    let end = close_of.get(&k).copied().unwrap_or(toks.len() - 1);
                                    fns.push(FnSpan {
                                        name,
                                        line,
                                        body_start: k + 1,
                                        body_end: end,
                                    });
                                    break;
                                }
                                Tok::Punct(';') => break, // trait signature
                                _ => k += 1,
                            }
                        }
                    }
                }
            }
        }
        i += 1;
    }
    fns
}

/// Receiver identifier of a method call whose `.` is at `dot`.
fn receiver_of(toks: &[Token], open_of: &HashMap<usize, usize>, dot: usize) -> String {
    if dot == 0 {
        return "?".into();
    }
    match &toks[dot - 1].tok {
        Tok::Ident(s) => s.clone(),
        Tok::Punct(')') => {
            // `self.shard(key).lock()` — name the call before the parens.
            match open_of.get(&(dot - 1)) {
                Some(&open) if open > 0 => match &toks[open - 1].tok {
                    Tok::Ident(s) => s.clone(),
                    _ => "?".into(),
                },
                _ => "?".into(),
            }
        }
        _ => "?".into(),
    }
}

#[allow(clippy::too_many_lines)]
fn extract_events(
    toks: &[Token],
    start: usize,
    end: usize,
    nested: &[(usize, usize)],
    unlocked_spans: &[(usize, usize)],
    open_of: &HashMap<usize, usize>,
) -> Vec<Event> {
    let mut events = Vec::new();
    let mut scopes: Vec<Vec<Held>> = vec![Vec::new()];
    let mut pending_let: Option<String> = None;

    let held_now =
        |scopes: &Vec<Vec<Held>>| -> Vec<Held> { scopes.iter().flatten().cloned().collect() };
    let in_unlocked = |i: usize| unlocked_spans.iter().any(|&(s, e)| i > s && i < e);

    let mut i = start;
    while i < end {
        // Skip nested function bodies — their events are their own. (An
        // empty body has start == end; always make progress.)
        if let Some(&(_, ne)) = nested.iter().find(|&&(ns, _)| ns == i) {
            i = ne.max(i + 1);
            continue;
        }
        match &toks[i].tok {
            Tok::Punct('{') => {
                scopes.push(Vec::new());
                pending_let = None;
            }
            Tok::Punct('}') => {
                scopes.pop();
                if scopes.is_empty() {
                    scopes.push(Vec::new());
                }
            }
            Tok::Punct(';') => pending_let = None,
            Tok::Ident(id) if id == "let" => {
                pending_let = match toks.get(i + 1).map(|t| &t.tok) {
                    Some(Tok::Ident(m)) if m == "mut" => match toks.get(i + 2).map(|t| &t.tok) {
                        Some(Tok::Ident(b)) if punct_at(toks, i + 3) != Some('(') => {
                            Some(b.clone())
                        }
                        _ => None,
                    },
                    Some(Tok::Ident(b)) if punct_at(toks, i + 2) != Some('(') => Some(b.clone()),
                    _ => None,
                };
            }
            Tok::Punct('.') => {
                if let Some(method) = ident_at(toks, i + 1) {
                    let line = toks[i + 1].line;
                    if punct_at(toks, i + 2) == Some('(') {
                        let method = method.to_string();
                        let receiver = receiver_of(toks, open_of, i);
                        let zero_arg = punct_at(toks, i + 3) == Some(')');
                        if zero_arg && ACQUIRE_METHODS.contains(&method.as_str()) {
                            let held = held_now(&scopes);
                            events.push(Event::Acquire {
                                receiver: receiver.clone(),
                                line,
                                held,
                            });
                            // Bound guard only when the statement is exactly
                            // `let g = <recv>.lock();` — the acquisition's
                            // `()` immediately followed by `;`.
                            if let Some(binding) = pending_let.clone() {
                                if punct_at(toks, i + 4) == Some(';') {
                                    scopes.last_mut().unwrap().push(Held {
                                        binding,
                                        receiver,
                                        acquired_line: line,
                                    });
                                    pending_let = None;
                                }
                            }
                            i += 3;
                            continue;
                        }
                        if BARRIER_METHODS.contains(&method.as_str()) {
                            events.push(Event::Barrier {
                                method: method.clone(),
                                receiver,
                                line,
                                in_unlocked: in_unlocked(i),
                                held: held_now(&scopes),
                            });
                            i += 2;
                            continue;
                        }
                        if PANIC_METHODS.contains(&method.as_str()) {
                            events.push(Event::Panic {
                                what: format!(".{method}()"),
                                line,
                            });
                            i += 2;
                            continue;
                        }
                        events.push(Event::Call {
                            name: method,
                            line,
                            held: held_now(&scopes),
                        });
                        i += 2;
                        continue;
                    }
                }
            }
            Tok::Ident(name) => {
                // Macro invocations: only the panic family matters.
                if punct_at(toks, i + 1) == Some('!') && PANIC_MACROS.contains(&name.as_str()) {
                    events.push(Event::Panic {
                        what: format!("{name}!"),
                        line: toks[i].line,
                    });
                    i += 2;
                    continue;
                }
                // Free / associated calls: `name(...)` not preceded by `.`
                // (method calls handled above) or `fn`.
                if punct_at(toks, i + 1) == Some('(')
                    && !CALL_KEYWORDS.contains(&name.as_str())
                    && (i == 0 || ident_at(toks, i - 1) != Some("fn"))
                {
                    // `drop(guard)` explicitly releases a binding.
                    if name == "drop" && punct_at(toks, i + 3) == Some(')') {
                        if let Some(arg) = ident_at(toks, i + 2) {
                            let arg = arg.to_string();
                            for scope in scopes.iter_mut() {
                                scope.retain(|h| h.binding != arg);
                            }
                            i += 4;
                            continue;
                        }
                    }
                    events.push(Event::Call {
                        name: name.clone(),
                        line: toks[i].line,
                        held: held_now(&scopes),
                    });
                }
            }
            _ => {}
        }
        i += 1;
    }
    events
}

#[cfg(test)]
mod tests {
    use super::*;

    fn facts(src: &str) -> FileFacts {
        extract("test.rs", src)
    }

    #[test]
    fn guard_binding_and_extent() {
        let f = facts(
            r#"
fn f(&self) {
    {
        let g = self.state.lock();
        self.file.sync()?;
    }
    self.file.sync()?;
}
"#,
        );
        let ev = &f.functions[0].events;
        let barriers: Vec<_> = ev
            .iter()
            .filter_map(|e| match e {
                Event::Barrier { held, .. } => Some(held.len()),
                _ => None,
            })
            .collect();
        assert_eq!(barriers, vec![1, 0], "guard dies at block end");
    }

    #[test]
    fn temporary_guard_not_bound() {
        let f = facts("fn f(&self) { let n = self.versions.lock().next(); self.file.sync()?; }");
        let ev = &f.functions[0].events;
        assert!(ev.iter().any(|e| matches!(e, Event::Acquire { .. })));
        let held = ev
            .iter()
            .find_map(|e| match e {
                Event::Barrier { held, .. } => Some(held.len()),
                _ => None,
            })
            .unwrap();
        assert_eq!(held, 0, "chained call is not a guard binding");
    }

    #[test]
    fn drop_releases_binding() {
        let f = facts("fn f(&self) { let g = self.state.lock(); drop(g); self.file.sync()?; }");
        let held = f.functions[0]
            .events
            .iter()
            .find_map(|e| match e {
                Event::Barrier { held, .. } => Some(held.len()),
                _ => None,
            })
            .unwrap();
        assert_eq!(held, 0);
    }

    #[test]
    fn cfg_test_regions_marked() {
        let f = facts(
            r#"
fn live(&self) { self.x.unwrap(); }
#[cfg(test)]
mod tests {
    fn helper() { x.unwrap(); }
    #[test]
    fn t() { y.unwrap(); }
}
"#,
        );
        let by_name: HashMap<_, _> = f
            .functions
            .iter()
            .map(|f| (f.name.as_str(), f.in_test))
            .collect();
        assert!(!by_name["live"]);
        assert!(by_name["helper"]);
        assert!(by_name["t"]);
    }

    #[test]
    fn unlocked_span_suppresses() {
        let f = facts(
            r#"
fn f(&self) {
    let mut state = self.state.lock();
    MutexGuard::unlocked(&mut state, || { wal.sync() })?;
    wal.sync()?;
}
"#,
        );
        let flags: Vec<bool> = f.functions[0]
            .events
            .iter()
            .filter_map(|e| match e {
                Event::Barrier { in_unlocked, .. } => Some(*in_unlocked),
                _ => None,
            })
            .collect();
        assert_eq!(flags, vec![true, false]);
    }

    #[test]
    fn allow_comments_parsed() {
        let f = facts("// bolt-lint: allow(lock-order, unsynced-commit)\nfn f() {}\n");
        assert!(f.allowed("lock-order", 1));
        assert!(f.allowed("unsynced-commit", 2), "line-above allows apply");
        assert!(!f.allowed("guard-across-barrier", 1));
    }

    #[test]
    fn nested_fn_events_not_double_counted() {
        let f = facts("fn outer() { fn inner() { x.unwrap(); } }");
        let outer = f.functions.iter().find(|f| f.name == "outer").unwrap();
        assert!(outer.events.is_empty());
        let inner = f.functions.iter().find(|f| f.name == "inner").unwrap();
        assert_eq!(inner.events.len(), 1);
    }

    #[test]
    fn named_lock_registrations_extracted() {
        let f = facts(
            r#"
fn build() {
    let a = named_mutex("core.state", State::new());
    let b = named_rwlock("core.table", ());
    let c = TrackedMutex::named("core.tracked", ());
    let d = Mutex::named(name, value); // forwarded ident, not a literal
}
#[cfg(test)]
mod tests {
    fn t() { let x = named_mutex("test.only", ()); }
}
"#,
        );
        let live: Vec<&str> = f
            .named_locks
            .iter()
            .filter(|l| !l.in_test)
            .map(|l| l.name.as_str())
            .collect();
        assert_eq!(live, vec!["core.state", "core.table", "core.tracked"]);
        assert!(f
            .named_locks
            .iter()
            .any(|l| l.in_test && l.name == "test.only"));
    }

    #[test]
    fn receiver_through_call_parens() {
        let f = facts("fn f(&self) { let g = self.shard(key).lock(); }");
        let recv = f.functions[0]
            .events
            .iter()
            .find_map(|e| match e {
                Event::Acquire { receiver, .. } => Some(receiver.clone()),
                _ => None,
            })
            .unwrap();
        assert_eq!(recv, "shard");
    }
}

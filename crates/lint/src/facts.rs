//! Per-function fact extraction over the token stream: lock acquisitions and
//! guard lifetimes, env-layer barrier calls, panic sites, calls with receiver
//! identifiers and closure arguments (for type-aware cross-function lock
//! propagation), discarded fallible I/O results, `#[cfg(test)]` regions, and
//! `MutexGuard::unlocked` spans.
//!
//! Beyond events, the extractor indexes the *type structure* the resolver in
//! [`crate::rules`] needs: `impl`/`impl Trait for Type` blocks (so methods
//! are keyed by their `Self` type), `trait` declarations (method name →
//! trait), struct field types, and parameter/local variable types — enough
//! to resolve `receiver.method(..)` through the receiver's type instead of
//! relying on globally unique method names.
//!
//! The extractor is lexical, not a parser: it tracks brace scopes, `let`
//! statements, and bracket matching, which is enough to recover guard
//! extents and type heads for straight-line Rust of the style this
//! workspace uses. Known approximations are documented in DESIGN.md §10.

use std::collections::{BTreeSet, HashMap};

use crate::lexer::{lex, Tok, Token};

/// Methods whose zero-argument calls are lock acquisitions.
const ACQUIRE_METHODS: [&str; 3] = ["lock", "read", "write"];
/// Env-layer barrier/I-O methods watched by rules L1 and L4.
const BARRIER_METHODS: [&str; 4] = ["sync", "ordering_barrier", "append", "add_record"];
/// Fallible env/WAL/MANIFEST methods whose discarded `Result` rule L6
/// flags in crash-path and commit-protocol modules.
const FALLIBLE_IO_METHODS: [&str; 6] = [
    "sync",
    "ordering_barrier",
    "append",
    "add_record",
    "rename_file",
    "remove_file",
];
/// Panic-family suffix methods and macros watched by rule L3.
const PANIC_METHODS: [&str; 2] = ["unwrap", "expect"];
const PANIC_MACROS: [&str; 4] = ["panic", "unreachable", "todo", "unimplemented"];
const CALL_KEYWORDS: [&str; 7] = ["if", "while", "for", "match", "loop", "return", "fn"];
/// Smart-pointer types unwrapped when extracting a receiver type head:
/// `Arc<Mutex<T>>` types its receiver as `Mutex`, `Box<dyn Env>` as `Env`.
const WRAPPER_TYPES: [&str; 3] = ["Arc", "Rc", "Box"];

/// A lock guard live at some program point.
#[derive(Debug, Clone)]
pub struct Held {
    /// The `let` binding holding the guard.
    pub binding: String,
    /// The acquisition receiver (`state` in `self.state.lock()`).
    pub receiver: String,
    /// Line of the acquisition.
    pub acquired_line: u32,
}

/// One extracted event, in source order within a function.
#[derive(Debug, Clone)]
pub enum Event {
    /// A `receiver.lock()` / `.read()` / `.write()` acquisition. `held` is
    /// the guard set at the moment of acquisition (excluding this one).
    Acquire {
        /// Receiver identifier at the call site.
        receiver: String,
        /// Source line of the acquisition.
        line: u32,
        /// Guards live at this point (excluding this one).
        held: Vec<Held>,
    },
    /// An env-layer barrier call (`.sync(` / `.ordering_barrier(` /
    /// `.append(` / `.add_record(`).
    Barrier {
        /// Barrier method name (`sync`, `append`, ...).
        method: String,
        /// Receiver identifier at the call site.
        receiver: String,
        /// Source line of the call.
        line: u32,
        /// Whether the call sits inside a `MutexGuard::unlocked` closure.
        in_unlocked: bool,
        /// Guards live at this point.
        held: Vec<Held>,
    },
    /// Any other call, recorded for cross-function lock propagation.
    Call {
        /// Callee identifier (method or free-function name).
        name: String,
        /// Receiver identifier for method calls (`None` for free calls and
        /// receivers the lexical pass cannot name, e.g. `shards[i]`).
        recv: Option<String>,
        /// Synthetic names of closure literals passed as arguments to this
        /// call (resolved to pseudo-functions in [`FileFacts::functions`]).
        closure_args: Vec<String>,
        /// Source line of the call.
        line: u32,
        /// Guards live at this point.
        held: Vec<Held>,
    },
    /// `unwrap`/`expect`/`panic!`-family site.
    Panic {
        /// What was called (`unwrap`, `expect`, `panic!`, ...).
        what: String,
        /// Source line of the call.
        line: u32,
    },
    /// A fallible env/WAL/MANIFEST call whose `Result` is discarded:
    /// `let _ = w.sync();`, `w.sync().ok();`, or a bare `w.sync();`
    /// statement that binds nothing. Rule L6 flags these in crash-path and
    /// commit-protocol modules.
    Discard {
        /// The fallible method whose result was dropped.
        method: String,
        /// How it was dropped (`let _ =`, `.ok()`, `unused return`).
        how: &'static str,
        /// Source line of the call.
        line: u32,
    },
}

/// Facts for one function (or closure pseudo-function).
#[derive(Debug)]
pub struct FnFacts {
    /// Bare function name, or a synthetic `{closure:<file>:<n>}` name.
    pub name: String,
    /// Line of the `fn` keyword (or of the closure's opening `|`).
    pub line: u32,
    /// Inside a `#[cfg(test)]` region or under `#[test]`.
    pub in_test: bool,
    /// `true` for closure pseudo-functions. Closure bodies are *also*
    /// extracted inline into their enclosing function (so guard context is
    /// never lost); the pseudo-function exists so the resolver can model a
    /// callee invoking the closure while holding its own locks. Rules that
    /// report per-event findings skip closures to avoid double-reporting.
    pub is_closure: bool,
    /// `Self` type when the function sits inside an `impl` block.
    pub self_ty: Option<String>,
    /// Trait name when inside `impl Trait for Type` or a `trait` body.
    pub trait_name: Option<String>,
    /// Parameter `(name, type-head)` pairs; `"?"` when no type head could
    /// be extracted (tuples, slices, fn pointers). Generic parameters carry
    /// their first bound (`fn f<F: Fn()>(f: F)` records `("f", "Fn")`).
    pub params: Vec<(String, String)>,
    /// Local variable type heads from `let x: T = ..`, `let x = T::ctor(..)`
    /// and `let x = T { .. }`.
    pub locals: HashMap<String, String>,
    /// Extracted events in source order.
    pub events: Vec<Event>,
}

/// A named-lock registration: `named_mutex("core.state", ..)`,
/// `named_rwlock(..)`, or `Mutex::named("...", ..)` with a literal name.
#[derive(Debug, Clone)]
pub struct NamedLock {
    /// The canonical lock name passed as the first argument.
    pub name: String,
    /// Source line of the name literal.
    pub line: u32,
    /// Inside a `#[cfg(test)]` region or under `#[test]`.
    pub in_test: bool,
}

/// A `trait` declaration: its name and every method named in its body
/// (declared or defaulted). The resolver uses this to route calls on
/// `dyn Trait` / `impl Trait` receivers to every implementor.
#[derive(Debug, Clone)]
pub struct TraitDecl {
    /// Trait name.
    pub name: String,
    /// Method names declared in the trait body.
    pub methods: BTreeSet<String>,
}

/// Facts for one file.
pub struct FileFacts {
    /// Path as given to [`extract`].
    pub path: String,
    /// Per-function facts in source order; closure pseudo-functions follow
    /// the real functions.
    pub functions: Vec<FnFacts>,
    /// Named-lock constructor sites (rule L5 cross-checks these against the
    /// declared `[order].locks`).
    pub named_locks: Vec<NamedLock>,
    /// Line → rules allowed by `// bolt-lint: allow(rule, ...)` comments.
    /// Only plain `//` comments count; doc comments (`///`, `//!`) that
    /// mention the syntax do not register suppressions.
    pub allows: HashMap<u32, Vec<String>>,
    /// Trait declarations in this file.
    pub traits: Vec<TraitDecl>,
    /// Struct name → field name → field type head.
    pub structs: HashMap<String, HashMap<String, String>>,
    /// `true` for integration-test and example files (a `tests` or
    /// `examples` path component): their `#[test]` functions are linted
    /// like live code instead of being exempt.
    pub integration: bool,
}

impl FileFacts {
    /// Is `rule` allowed at `line` (same line or the line above)?
    pub fn allowed(&self, rule: &str, line: u32) -> bool {
        self.allowed_at(rule, line).is_some()
    }

    /// The comment line whose allow suppresses `rule` at `line`, if any.
    /// Used by the dead-suppression pass to mark which allows earned their
    /// keep.
    pub fn allowed_at(&self, rule: &str, line: u32) -> Option<u32> {
        [line, line.saturating_sub(1)].into_iter().find(|l| {
            self.allows
                .get(l)
                .is_some_and(|rules| rules.iter().any(|r| r == rule))
        })
    }
}

/// An `impl` block or `trait` body: functions inside inherit its `Self`
/// type / trait name.
struct Container {
    self_ty: Option<String>,
    trait_name: Option<String>,
    body_start: usize,
    body_end: usize,
}

/// A closure literal: `|args| body`, recorded as a pseudo-function.
struct Closure {
    name: String,
    line: u32,
    /// Token index of the opening `|`.
    start: usize,
    /// Token index of the closing `|` of the parameter list.
    params_end: usize,
    body_start: usize,
    body_end: usize, // exclusive
    /// Innermost call paren token index this closure is an argument of.
    enclosing_call_paren: Option<usize>,
}

/// Extract facts from one source file.
pub fn extract(path: &str, src: &str) -> FileFacts {
    let lexed = lex(src);
    let toks = &lexed.tokens;

    let allows = parse_allows(&lexed.comments);
    let (close_of, open_of) = match_brackets(toks);
    let test_regions = find_test_regions(toks, &close_of);
    let unlocked_spans = find_unlocked_spans(toks, &close_of);
    let containers = find_containers(toks, &close_of);
    let traits = find_trait_decls(toks, &close_of);
    let structs = find_structs(toks, &close_of);
    let fns = find_functions(toks, &close_of);
    let closures = find_closures(toks, path, &close_of);

    let fn_bodies: Vec<(usize, usize)> = fns.iter().map(|f| (f.body_start, f.body_end)).collect();
    let container_of = |start: usize, end: usize| -> (Option<String>, Option<String>) {
        // Innermost container strictly enclosing the body.
        containers
            .iter()
            .filter(|c| c.body_start <= start && end <= c.body_end)
            .max_by_key(|c| c.body_start)
            .map(|c| (c.self_ty.clone(), c.trait_name.clone()))
            .unwrap_or((None, None))
    };

    let mut functions = Vec::new();
    for f in &fns {
        // Token ranges of other functions nested strictly inside this body
        // are theirs, not ours.
        let nested: Vec<(usize, usize)> = fns
            .iter()
            .filter(|g| g.body_start > f.body_start && g.body_end <= f.body_end)
            .map(|g| (g.body_start, g.body_end))
            .collect();
        let in_test = test_regions
            .iter()
            .any(|&(s, e)| f.body_start >= s && f.body_end <= e);
        let (self_ty, trait_name) = container_of(f.body_start, f.body_end);
        let (events, locals) = extract_events(
            toks,
            f.body_start,
            f.body_end,
            &nested,
            &unlocked_spans,
            &open_of,
            &close_of,
            &closures,
        );
        functions.push(FnFacts {
            name: f.name.clone(),
            line: f.line,
            in_test,
            is_closure: false,
            self_ty,
            trait_name,
            params: parse_params(toks, f.params_open, f.params_close, &f.bounds),
            locals,
            events,
        });
    }

    // Closure pseudo-functions: bodies re-extracted standalone so the
    // resolver can see what a callback may acquire when a callee invokes it.
    for c in &closures {
        let nested: Vec<(usize, usize)> = fn_bodies
            .iter()
            .filter(|&&(s, e)| s > c.body_start && e <= c.body_end)
            .copied()
            .collect();
        let in_test = test_regions
            .iter()
            .any(|&(s, e)| c.start >= s && c.start < e);
        let (self_ty, trait_name) = container_of(c.body_start, c.body_end.max(c.body_start));
        let (events, locals) = extract_events(
            toks,
            c.body_start,
            c.body_end,
            &nested,
            &unlocked_spans,
            &open_of,
            &close_of,
            &closures,
        );
        functions.push(FnFacts {
            name: c.name.clone(),
            line: c.line,
            in_test,
            is_closure: true,
            self_ty,
            trait_name,
            params: parse_param_segments(toks, c.start + 1, c.params_end, &HashMap::new()),
            locals,
            events,
        });
    }

    let named_locks = find_named_locks(toks, &test_regions);

    FileFacts {
        path: path.to_string(),
        functions,
        named_locks,
        allows,
        traits,
        structs,
        integration: is_integration_path(path),
    }
}

/// Integration-test / example files: any `tests` or `examples` path
/// component (the corpus under `tests/corpus/` is excluded from the walk
/// before extraction ever sees it).
fn is_integration_path(path: &str) -> bool {
    path.replace('\\', "/")
        .split('/')
        .any(|c| c == "tests" || c == "examples")
}

/// Named-lock constructor sites: `named_mutex("...", ..)` /
/// `named_rwlock("...", ..)` anywhere, or `::named("...", ..)` (the tracked
/// constructors). Calls whose first argument is not a string literal (e.g.
/// the forwarding `Mutex::named(name, value)` inside `named_mutex` itself)
/// register nothing.
fn find_named_locks(toks: &[Token], test_regions: &[(usize, usize)]) -> Vec<NamedLock> {
    let mut out = Vec::new();
    for i in 0..toks.len() {
        let Some(ident) = ident_at(toks, i) else {
            continue;
        };
        let is_ctor = ident == "named_mutex"
            || ident == "named_rwlock"
            || (ident == "named"
                && i >= 2
                && punct_at(toks, i - 1) == Some(':')
                && punct_at(toks, i - 2) == Some(':'));
        if !is_ctor || punct_at(toks, i + 1) != Some('(') {
            continue;
        }
        if let Some(Tok::Lit(name)) = toks.get(i + 2).map(|t| &t.tok) {
            out.push(NamedLock {
                name: name.clone(),
                line: toks[i + 2].line,
                in_test: test_regions.iter().any(|&(s, e)| i >= s && i < e),
            });
        }
    }
    out
}

fn parse_allows(comments: &[(u32, String)]) -> HashMap<u32, Vec<String>> {
    let mut allows: HashMap<u32, Vec<String>> = HashMap::new();
    for (line, text) in comments {
        // Only plain `//` comments register suppressions. The lexer stores
        // comment text starting after the `//`, so doc comments arrive with
        // a leading `/` (`///`) or `!` (`//!`) — those merely *describe* the
        // allow syntax and must not count as (dead) allows themselves.
        if text.starts_with('/') || text.starts_with('!') {
            continue;
        }
        let Some(pos) = text.find("bolt-lint:") else {
            continue;
        };
        let rest = text[pos + "bolt-lint:".len()..].trim_start();
        let Some(list) = rest
            .strip_prefix("allow(")
            .and_then(|r| r.split(')').next())
        else {
            continue;
        };
        allows
            .entry(*line)
            .or_default()
            .extend(list.split(',').map(|r| r.trim().to_string()));
    }
    allows
}

/// Match `(`/`)`, `{`/`}` and `[`/`]` pairs. Returns (open→close, close→open).
fn match_brackets(toks: &[Token]) -> (HashMap<usize, usize>, HashMap<usize, usize>) {
    let mut close_of = HashMap::new();
    let mut open_of = HashMap::new();
    let mut stack: Vec<(char, usize)> = Vec::new();
    for (i, t) in toks.iter().enumerate() {
        if let Tok::Punct(c) = t.tok {
            match c {
                '(' | '{' | '[' => stack.push((c, i)),
                ')' | '}' | ']' => {
                    let want = match c {
                        ')' => '(',
                        '}' => '{',
                        _ => '[',
                    };
                    // Pop to the matching opener, tolerating imbalance.
                    while let Some((oc, oi)) = stack.pop() {
                        if oc == want {
                            close_of.insert(oi, i);
                            open_of.insert(i, oi);
                            break;
                        }
                    }
                }
                _ => {}
            }
        }
    }
    (close_of, open_of)
}

fn ident_at(toks: &[Token], i: usize) -> Option<&str> {
    match toks.get(i).map(|t| &t.tok) {
        Some(Tok::Ident(s)) => Some(s),
        _ => None,
    }
}

fn punct_at(toks: &[Token], i: usize) -> Option<char> {
    match toks.get(i).map(|t| &t.tok) {
        Some(Tok::Punct(c)) => Some(*c),
        _ => None,
    }
}

/// Index just past a balanced `<...>` group starting at the `<` at `i`.
/// A `>` preceded by `-` (the `->` arrow inside `Fn(..) -> T` bounds) does
/// not close the group.
fn skip_angles(toks: &[Token], i: usize) -> usize {
    let mut depth = 0i32;
    let mut j = i;
    while j < toks.len() {
        match punct_at(toks, j) {
            Some('<') => depth += 1,
            Some('>') if punct_at(toks, j.wrapping_sub(1)) != Some('-') => {
                depth -= 1;
                if depth == 0 {
                    return j + 1;
                }
            }
            Some(';') | Some('{') => return j, // malformed; bail
            _ => {}
        }
        j += 1;
    }
    j
}

/// If `i` is an identifier followed by `(` — optionally with a turbofish
/// `::<..>` between — return the index of that call paren.
fn call_paren_after(toks: &[Token], i: usize) -> Option<usize> {
    if punct_at(toks, i + 1) == Some('(') {
        return Some(i + 1);
    }
    if punct_at(toks, i + 1) == Some(':')
        && punct_at(toks, i + 2) == Some(':')
        && punct_at(toks, i + 3) == Some('<')
    {
        let after = skip_angles(toks, i + 3);
        if punct_at(toks, after) == Some('(') {
            return Some(after);
        }
    }
    None
}

/// Token-index ranges covered by `#[cfg(test)]` / `#[test]` items.
fn find_test_regions(toks: &[Token], close_of: &HashMap<usize, usize>) -> Vec<(usize, usize)> {
    let mut regions = Vec::new();
    let mut i = 0;
    while i < toks.len() {
        if punct_at(toks, i) == Some('#') && punct_at(toks, i + 1) == Some('[') {
            let Some(&attr_end) = close_of.get(&(i + 1)) else {
                i += 1;
                continue;
            };
            let mut has_cfg = false;
            let mut has_test = false;
            for j in i + 2..attr_end {
                match ident_at(toks, j) {
                    Some("cfg") => has_cfg = true,
                    Some("test") => has_test = true,
                    _ => {}
                }
            }
            let only_test = attr_end == i + 3 && ident_at(toks, i + 2) == Some("test");
            if (has_cfg && has_test) || only_test {
                // Skip any further attributes, then cover the following item.
                let mut j = attr_end + 1;
                while punct_at(toks, j) == Some('#') && punct_at(toks, j + 1) == Some('[') {
                    match close_of.get(&(j + 1)) {
                        Some(&e) => j = e + 1,
                        None => break,
                    }
                }
                // Item extends to its first top-level `{ ... }` or `;`.
                let mut k = j;
                while k < toks.len() {
                    match toks[k].tok {
                        Tok::Punct('{') => {
                            let end = close_of.get(&k).copied().unwrap_or(toks.len() - 1);
                            regions.push((i, end + 1));
                            i = end;
                            break;
                        }
                        Tok::Punct(';') => {
                            regions.push((i, k + 1));
                            i = k;
                            break;
                        }
                        _ => k += 1,
                    }
                }
            }
            i = i.max(attr_end) + 1;
            continue;
        }
        i += 1;
    }
    regions
}

/// Paren spans of `MutexGuard::unlocked(...)` / `TrackedMutexGuard::unlocked(...)`
/// calls, inside which rule L1 does not fire (the guard is released).
fn find_unlocked_spans(toks: &[Token], close_of: &HashMap<usize, usize>) -> Vec<(usize, usize)> {
    let mut spans = Vec::new();
    for i in 0..toks.len() {
        let Some(name) = ident_at(toks, i) else {
            continue;
        };
        if (name == "MutexGuard" || name == "TrackedMutexGuard")
            && punct_at(toks, i + 1) == Some(':')
            && punct_at(toks, i + 2) == Some(':')
            && ident_at(toks, i + 3) == Some("unlocked")
            && punct_at(toks, i + 4) == Some('(')
        {
            if let Some(&end) = close_of.get(&(i + 4)) {
                spans.push((i + 4, end));
            }
        }
    }
    spans
}

/// Read a type head starting at `i`: skip references, lifetimes, `mut`,
/// `dyn` and `impl`; unwrap `Arc`/`Rc`/`Box`; return the last path segment
/// (`bolt_core::CompactionPolicyKind` → `CompactionPolicyKind`,
/// `Arc<Mutex<T>>` → `Mutex`, `&dyn Env` → `Env`). `None` for tuples,
/// slices and fn pointers.
fn type_head(toks: &[Token], mut i: usize, end: usize) -> Option<String> {
    loop {
        match toks.get(i).map(|t| &t.tok) {
            Some(Tok::Punct('&')) | Some(Tok::Lifetime) => i += 1,
            Some(Tok::Ident(s)) if s == "mut" || s == "dyn" || s == "impl" => i += 1,
            _ => break,
        }
        if i >= end {
            return None;
        }
    }
    let mut last: Option<String> = None;
    while i < end {
        let Some(name) = ident_at(toks, i) else { break };
        last = Some(name.to_string());
        i += 1;
        if punct_at(toks, i) == Some('<') {
            if WRAPPER_TYPES.contains(&name) {
                // The wrapped type is the interesting one.
                return type_head(toks, i + 1, end);
            }
            i = skip_angles(toks, i);
        }
        if punct_at(toks, i) == Some(':') && punct_at(toks, i + 1) == Some(':') {
            i += 2;
            continue;
        }
        break;
    }
    last
}

/// `impl` blocks and `trait` bodies, as containers assigning `Self` /
/// trait context to the functions inside them.
fn find_containers(toks: &[Token], close_of: &HashMap<usize, usize>) -> Vec<Container> {
    let mut out = Vec::new();
    let mut i = 0;
    while i < toks.len() {
        match ident_at(toks, i) {
            Some("impl") => {
                let mut j = i + 1;
                if punct_at(toks, j) == Some('<') {
                    j = skip_angles(toks, j);
                }
                let first = type_head(toks, j, toks.len());
                // Advance past the first path (type_head does not report
                // how far it read); scan for `for`, `where` or `{`.
                let mut k = j;
                let mut second: Option<String> = None;
                while k < toks.len() {
                    match &toks[k].tok {
                        Tok::Ident(s) if s == "for" => {
                            second = type_head(toks, k + 1, toks.len());
                        }
                        Tok::Punct('{') => break,
                        Tok::Punct(';') => break,
                        _ => {}
                    }
                    k += 1;
                }
                if punct_at(toks, k) == Some('{') {
                    if let Some(&end) = close_of.get(&k) {
                        let (self_ty, trait_name) = match second {
                            Some(ty) => (Some(ty), first),
                            None => (first, None),
                        };
                        out.push(Container {
                            self_ty,
                            trait_name,
                            body_start: k + 1,
                            body_end: end,
                        });
                    }
                }
                i = k + 1;
                continue;
            }
            Some("trait") => {
                if let Some(name) = ident_at(toks, i + 1) {
                    let name = name.to_string();
                    let mut k = i + 2;
                    while k < toks.len() && punct_at(toks, k) != Some('{') {
                        if punct_at(toks, k) == Some(';') {
                            break;
                        }
                        k += 1;
                    }
                    if punct_at(toks, k) == Some('{') {
                        if let Some(&end) = close_of.get(&k) {
                            out.push(Container {
                                self_ty: None,
                                trait_name: Some(name),
                                body_start: k + 1,
                                body_end: end,
                            });
                        }
                    }
                    i = k + 1;
                    continue;
                }
            }
            _ => {}
        }
        i += 1;
    }
    out
}

/// Trait declarations with their method names.
fn find_trait_decls(toks: &[Token], close_of: &HashMap<usize, usize>) -> Vec<TraitDecl> {
    let mut out = Vec::new();
    let mut i = 0;
    while i < toks.len() {
        if ident_at(toks, i) == Some("trait") {
            if let Some(name) = ident_at(toks, i + 1) {
                let mut k = i + 2;
                while k < toks.len()
                    && punct_at(toks, k) != Some('{')
                    && punct_at(toks, k) != Some(';')
                {
                    k += 1;
                }
                if punct_at(toks, k) == Some('{') {
                    if let Some(&end) = close_of.get(&k) {
                        let mut methods = BTreeSet::new();
                        let mut j = k + 1;
                        while j < end {
                            if ident_at(toks, j) == Some("fn") {
                                if let Some(m) = ident_at(toks, j + 1) {
                                    methods.insert(m.to_string());
                                }
                            }
                            j += 1;
                        }
                        out.push(TraitDecl {
                            name: name.to_string(),
                            methods,
                        });
                        i = end;
                    }
                }
            }
        }
        i += 1;
    }
    out
}

/// Struct definitions with named fields: struct name → field → type head.
fn find_structs(
    toks: &[Token],
    close_of: &HashMap<usize, usize>,
) -> HashMap<String, HashMap<String, String>> {
    let mut out = HashMap::new();
    let mut i = 0;
    while i < toks.len() {
        if ident_at(toks, i) == Some("struct") {
            if let Some(name) = ident_at(toks, i + 1) {
                let mut j = i + 2;
                if punct_at(toks, j) == Some('<') {
                    j = skip_angles(toks, j);
                }
                // Skip a where clause; tuple/unit structs have `(` or `;`.
                while j < toks.len()
                    && punct_at(toks, j) != Some('{')
                    && punct_at(toks, j) != Some('(')
                    && punct_at(toks, j) != Some(';')
                {
                    j += 1;
                }
                if punct_at(toks, j) == Some('{') {
                    if let Some(&end) = close_of.get(&j) {
                        let fields = parse_fields(toks, j + 1, end);
                        out.insert(name.to_string(), fields);
                        i = end;
                    }
                }
            }
        }
        i += 1;
    }
    out
}

/// `field: Type` pairs at depth 0 of a struct body.
fn parse_fields(toks: &[Token], start: usize, end: usize) -> HashMap<String, String> {
    let mut fields = HashMap::new();
    let mut depth = 0i32;
    let mut i = start;
    while i < end {
        match punct_at(toks, i) {
            Some('(') | Some('[') | Some('{') => depth += 1,
            Some(')') | Some(']') | Some('}') => depth -= 1,
            Some('<') => depth += 1,
            Some('>') if punct_at(toks, i.wrapping_sub(1)) != Some('-') => depth -= 1,
            Some(':')
                if depth == 0
                    && punct_at(toks, i + 1) != Some(':')
                    && punct_at(toks, i.wrapping_sub(1)) != Some(':') =>
            {
                if let Some(fname) = ident_at(toks, i - 1) {
                    if let Some(ty) = type_head(toks, i + 1, end) {
                        fields.insert(fname.to_string(), ty);
                    }
                }
            }
            _ => {}
        }
        i += 1;
    }
    fields
}

struct FnSpan {
    name: String,
    line: u32,
    params_open: usize,
    params_close: usize,
    /// Generic-parameter bounds: `F` → `Fn` for `fn f<F: Fn()>(..)`.
    bounds: HashMap<String, String>,
    body_start: usize,
    body_end: usize, // exclusive
}

/// Locate every `fn name ... { body }` at any nesting depth.
fn find_functions(toks: &[Token], close_of: &HashMap<usize, usize>) -> Vec<FnSpan> {
    let mut fns = Vec::new();
    let mut i = 0;
    while i < toks.len() {
        if ident_at(toks, i) == Some("fn") {
            if let Some(name) = ident_at(toks, i + 1) {
                let name = name.to_string();
                let line = toks[i].line;
                // Generic parameter bounds, then the parameter list `(`.
                let mut bounds = HashMap::new();
                let mut j = i + 2;
                if punct_at(toks, j) == Some('<') {
                    let end = skip_angles(toks, j);
                    parse_bounds(toks, j + 1, end.saturating_sub(1), &mut bounds);
                    j = end;
                }
                let params = if punct_at(toks, j) == Some('(') {
                    Some(j)
                } else {
                    None
                };
                if let Some(p) = params {
                    if let Some(&pend) = close_of.get(&p) {
                        // Body is the first `{` before any `;` after params.
                        let mut k = pend + 1;
                        while k < toks.len() {
                            match toks[k].tok {
                                Tok::Punct('<') => k = skip_angles(toks, k),
                                Tok::Punct('{') => {
                                    let end = close_of.get(&k).copied().unwrap_or(toks.len() - 1);
                                    fns.push(FnSpan {
                                        name,
                                        line,
                                        params_open: p,
                                        params_close: pend,
                                        bounds,
                                        body_start: k + 1,
                                        body_end: end,
                                    });
                                    break;
                                }
                                Tok::Punct(';') => break, // trait signature
                                _ => k += 1,
                            }
                        }
                    }
                }
            }
        }
        i += 1;
    }
    fns
}

/// `T: Bound` pairs inside a generic parameter list (first bound only).
fn parse_bounds(toks: &[Token], start: usize, end: usize, out: &mut HashMap<String, String>) {
    let mut i = start;
    while i < end {
        if punct_at(toks, i) == Some(':') && punct_at(toks, i + 1) != Some(':') {
            if let Some(param) = ident_at(toks, i.wrapping_sub(1)) {
                if let Some(bound) = type_head(toks, i + 1, end) {
                    out.insert(param.to_string(), bound);
                }
            }
            // Skip to the next top-level comma.
            let mut depth = 0i32;
            while i < end {
                match punct_at(toks, i) {
                    Some('(') | Some('[') => depth += 1,
                    Some(')') | Some(']') => depth -= 1,
                    Some(',') if depth == 0 => break,
                    _ => {}
                }
                i += 1;
            }
        }
        i += 1;
    }
}

/// Parameters of a `fn`, from its paren span.
fn parse_params(
    toks: &[Token],
    open: usize,
    close: usize,
    bounds: &HashMap<String, String>,
) -> Vec<(String, String)> {
    parse_param_segments(toks, open + 1, close, bounds)
}

/// `name: Type` segments separated by top-level commas in `[start, end)`.
/// Also used for closure parameter lists (`|a, b: &T|`), where untyped
/// parameters record `"?"`.
fn parse_param_segments(
    toks: &[Token],
    start: usize,
    end: usize,
    bounds: &HashMap<String, String>,
) -> Vec<(String, String)> {
    let mut params = Vec::new();
    let mut seg_start = start;
    let mut depth = 0i32;
    let mut i = start;
    while i <= end {
        let at_end = i == end;
        let split = at_end || (depth == 0 && punct_at(toks, i) == Some(','));
        if !split {
            match punct_at(toks, i) {
                Some('(') | Some('[') | Some('{') | Some('<') => depth += 1,
                Some(')') | Some(']') | Some('}') => depth -= 1,
                Some('>') if punct_at(toks, i.wrapping_sub(1)) != Some('-') => depth -= 1,
                _ => {}
            }
            i += 1;
            continue;
        }
        if i > seg_start {
            if let Some(p) = parse_one_param(toks, seg_start, i, bounds) {
                params.push(p);
            }
        }
        seg_start = i + 1;
        if at_end {
            break;
        }
        i += 1;
    }
    params
}

fn parse_one_param(
    toks: &[Token],
    start: usize,
    end: usize,
    bounds: &HashMap<String, String>,
) -> Option<(String, String)> {
    // Find the pattern/type colon (single `:` at depth 0).
    let mut depth = 0i32;
    let mut colon = None;
    let mut i = start;
    while i < end {
        match punct_at(toks, i) {
            Some('(') | Some('[') | Some('<') => depth += 1,
            Some(')') | Some(']') => depth -= 1,
            Some('>') if punct_at(toks, i.wrapping_sub(1)) != Some('-') => depth -= 1,
            Some(':')
                if depth == 0
                    && punct_at(toks, i + 1) != Some(':')
                    && punct_at(toks, i.wrapping_sub(1)) != Some(':') =>
            {
                colon = Some(i);
                break;
            }
            _ => {}
        }
        i += 1;
    }
    match colon {
        Some(c) => {
            // Name: last identifier before the colon (`mut x: T`).
            let name = (start..c)
                .rev()
                .find_map(|j| ident_at(toks, j))?
                .to_string();
            if name == "self" {
                return None;
            }
            let ty = type_head(toks, c + 1, end)
                .map(|t| bounds.get(&t).cloned().unwrap_or(t))
                .unwrap_or_else(|| "?".into());
            Some((name, ty))
        }
        None => {
            // Untyped (closure param) or a bare `self`.
            let name = (start..end).find_map(|j| ident_at(toks, j))?.to_string();
            if name == "self" || name == "mut" {
                return None;
            }
            Some((name, "?".into()))
        }
    }
}

/// Closure literals, recorded as pseudo-functions. A `|` starts a closure
/// when the previous token cannot end an expression: `(`, `,`, `=`, `{`,
/// `move`, `return`, or start-of-file.
fn find_closures(toks: &[Token], path: &str, close_of: &HashMap<usize, usize>) -> Vec<Closure> {
    let mut out = Vec::new();
    let mut i = 0;
    let starts_closure = |i: usize| -> bool {
        if i == 0 {
            return true;
        }
        match &toks[i - 1].tok {
            Tok::Punct('(') | Tok::Punct(',') | Tok::Punct('=') | Tok::Punct('{') => true,
            Tok::Ident(s) => s == "move" || s == "return" || s == "else",
            _ => false,
        }
    };
    while i < toks.len() {
        if punct_at(toks, i) == Some('|') && starts_closure(i) {
            // Parameter list ends at the next `|` (parameters never nest
            // pipes); `||` is an empty list.
            let mut pe = i + 1;
            while pe < toks.len() && punct_at(toks, pe) != Some('|') {
                if matches!(punct_at(toks, pe), Some(';') | Some('{')) {
                    break; // not a closure after all
                }
                pe += 1;
            }
            if punct_at(toks, pe) != Some('|') {
                i += 1;
                continue;
            }
            let mut body_start = pe + 1;
            // Explicit return type: `|x| -> T { .. }` — skip to the block.
            if punct_at(toks, body_start) == Some('-')
                && punct_at(toks, body_start + 1) == Some('>')
            {
                while body_start < toks.len() && punct_at(toks, body_start) != Some('{') {
                    body_start += 1;
                }
            }
            let (bs, be) = if punct_at(toks, body_start) == Some('{') {
                match close_of.get(&body_start) {
                    Some(&end) => (body_start + 1, end),
                    None => (body_start + 1, toks.len()),
                }
            } else {
                // Expression body: up to the first `,`/`)`/`;`/`}` at depth 0.
                let mut depth = 0i32;
                let mut j = body_start;
                while j < toks.len() {
                    match punct_at(toks, j) {
                        Some('(') | Some('[') | Some('{') => depth += 1,
                        Some(')') | Some(']') | Some('}') if depth > 0 => depth -= 1,
                        Some(')') | Some('}') | Some(',') | Some(';') => break,
                        _ => {}
                    }
                    j += 1;
                }
                (body_start, j)
            };
            let enclosing_call_paren = innermost_call_paren(toks, close_of, i);
            out.push(Closure {
                name: format!("{{closure:{}:{}}}", path, out.len() + 1),
                line: toks[i].line,
                start: i,
                params_end: pe,
                body_start: bs,
                body_end: be,
                enclosing_call_paren,
            });
            i = pe + 1;
            continue;
        }
        i += 1;
    }
    out
}

/// The innermost call paren (a `(` directly preceded by an identifier)
/// strictly containing token `at`.
fn innermost_call_paren(
    toks: &[Token],
    close_of: &HashMap<usize, usize>,
    at: usize,
) -> Option<usize> {
    close_of
        .iter()
        .filter(|&(&open, &close)| {
            open < at
                && at < close
                && punct_at(toks, open) == Some('(')
                && open > 0
                && ident_at(toks, open - 1).is_some()
        })
        .map(|(&open, _)| open)
        .max()
}

/// Receiver identifier of a method call whose `.` is at `dot`.
fn receiver_of(toks: &[Token], open_of: &HashMap<usize, usize>, dot: usize) -> String {
    if dot == 0 {
        return "?".into();
    }
    match &toks[dot - 1].tok {
        Tok::Ident(s) => s.clone(),
        Tok::Punct(')') => {
            // `self.shard(key).lock()` — name the call before the parens.
            match open_of.get(&(dot - 1)) {
                Some(&open) if open > 0 => match &toks[open - 1].tok {
                    Tok::Ident(s) => s.clone(),
                    _ => "?".into(),
                },
                _ => "?".into(),
            }
        }
        _ => "?".into(),
    }
}

/// Record a local's type from `let x: T = ..`, `let x = T::ctor(..)` or
/// `let x = T { .. }` (uppercase path segment heuristics keep module paths
/// like `txn::decode(..)` out).
fn record_local_type(
    toks: &[Token],
    let_idx: usize,
    binding: &str,
    end: usize,
    locals: &mut HashMap<String, String>,
) {
    // Find the binding ident, then look at what follows.
    let mut i = let_idx + 1;
    if ident_at(toks, i) == Some("mut") {
        i += 1;
    }
    if ident_at(toks, i) != Some(binding) {
        return;
    }
    i += 1;
    if punct_at(toks, i) == Some(':') && punct_at(toks, i + 1) != Some(':') {
        if let Some(ty) = type_head(toks, i + 1, end) {
            locals.insert(binding.to_string(), ty);
        }
        return;
    }
    if punct_at(toks, i) != Some('=') {
        return;
    }
    i += 1;
    // `= Type { .. }` struct literal, or `= path::Type::ctor(..)`.
    let mut segments: Vec<String> = Vec::new();
    let mut j = i;
    while j < end {
        let Some(name) = ident_at(toks, j) else { break };
        segments.push(name.to_string());
        j += 1;
        if punct_at(toks, j) == Some('<')
            || (punct_at(toks, j) == Some(':')
                && punct_at(toks, j + 1) == Some(':')
                && punct_at(toks, j + 2) == Some('<'))
        {
            // Generic args (plain or turbofish) before the next segment.
            let at = if punct_at(toks, j) == Some('<') {
                j
            } else {
                j + 2
            };
            j = skip_angles(toks, at);
        }
        if punct_at(toks, j) == Some(':') && punct_at(toks, j + 1) == Some(':') {
            j += 2;
            continue;
        }
        break;
    }
    let uppercase = |s: &String| s.chars().next().is_some_and(char::is_uppercase);
    match (punct_at(toks, j), segments.len()) {
        // `= Type { .. }`
        (Some('{'), 1) if uppercase(&segments[0]) => {
            locals.insert(binding.to_string(), segments[0].clone());
        }
        // `= Type::ctor(..)` — the segment before the call is the type.
        (Some('('), n) if n >= 2 && uppercase(&segments[n - 2]) => {
            locals.insert(binding.to_string(), segments[n - 2].clone());
        }
        _ => {}
    }
}

#[allow(clippy::too_many_lines, clippy::too_many_arguments)]
fn extract_events(
    toks: &[Token],
    start: usize,
    end: usize,
    nested: &[(usize, usize)],
    unlocked_spans: &[(usize, usize)],
    open_of: &HashMap<usize, usize>,
    close_of: &HashMap<usize, usize>,
    closures: &[Closure],
) -> (Vec<Event>, HashMap<String, String>) {
    let mut events = Vec::new();
    let mut locals: HashMap<String, String> = HashMap::new();
    let mut scopes: Vec<Vec<Held>> = vec![Vec::new()];
    let mut pending_let: Option<String> = None;
    // L6 statement state: does the current statement bind/consume a value,
    // and is it a `let _ = ..` discard?
    let mut stmt_bound = false;
    let mut discard_let = false;

    let held_now =
        |scopes: &Vec<Vec<Held>>| -> Vec<Held> { scopes.iter().flatten().cloned().collect() };
    let in_unlocked = |i: usize| unlocked_spans.iter().any(|&(s, e)| i > s && i < e);
    let closure_args_of = |paren: usize| -> Vec<String> {
        closures
            .iter()
            .filter(|c| c.enclosing_call_paren == Some(paren))
            .map(|c| c.name.clone())
            .collect()
    };
    // How a fallible call's result is consumed, judged from the token after
    // its closing paren. Returns the discard mode, if any.
    let discarded = |paren: usize, discard_let: bool, stmt_bound: bool| -> Option<&'static str> {
        let after = close_of.get(&paren).copied()? + 1;
        match punct_at(toks, after) {
            Some('?') => None, // propagated
            Some('.')
                if ident_at(toks, after + 1) == Some("ok")
                    && punct_at(toks, after + 2) == Some('(')
                    && punct_at(toks, after + 3) == Some(')')
                    && !matches!(punct_at(toks, after + 4), Some('.') | Some('?'))
                    && (discard_let || !stmt_bound) =>
            {
                Some(".ok()")
            }
            Some(';') if discard_let => Some("let _ ="),
            Some(';') if !stmt_bound => Some("unused return"),
            _ => None,
        }
    };

    let mut i = start;
    while i < end {
        // Skip nested function bodies — their events are their own. (An
        // empty body has start == end; always make progress.)
        if let Some(&(_, ne)) = nested.iter().find(|&&(ns, _)| ns == i) {
            i = ne.max(i + 1);
            continue;
        }
        match &toks[i].tok {
            Tok::Punct('{') => {
                scopes.push(Vec::new());
                pending_let = None;
                stmt_bound = false;
                discard_let = false;
            }
            Tok::Punct('}') => {
                scopes.pop();
                if scopes.is_empty() {
                    scopes.push(Vec::new());
                }
                stmt_bound = false;
                discard_let = false;
            }
            Tok::Punct(';') => {
                pending_let = None;
                stmt_bound = false;
                discard_let = false;
            }
            Tok::Punct('=') => stmt_bound = true,
            Tok::Ident(id) if id == "let" => {
                pending_let = match toks.get(i + 1).map(|t| &t.tok) {
                    Some(Tok::Ident(m)) if m == "mut" => match toks.get(i + 2).map(|t| &t.tok) {
                        Some(Tok::Ident(b)) if punct_at(toks, i + 3) != Some('(') => {
                            Some(b.clone())
                        }
                        _ => None,
                    },
                    Some(Tok::Ident(b)) if punct_at(toks, i + 2) != Some('(') => Some(b.clone()),
                    _ => None,
                };
                if let Some(b) = &pending_let {
                    if b == "_" {
                        discard_let = true;
                    } else {
                        record_local_type(toks, i, b, end.min(i + 64), &mut locals);
                    }
                }
            }
            Tok::Ident(id) if id == "return" || id == "if" || id == "while" || id == "match" => {
                stmt_bound = true;
            }
            Tok::Punct('.') => {
                if let Some(method) = ident_at(toks, i + 1) {
                    let line = toks[i + 1].line;
                    if let Some(paren) = call_paren_after(toks, i + 1) {
                        let method = method.to_string();
                        let receiver = receiver_of(toks, open_of, i);
                        let zero_arg = punct_at(toks, paren + 1) == Some(')');
                        if zero_arg && ACQUIRE_METHODS.contains(&method.as_str()) {
                            let held = held_now(&scopes);
                            events.push(Event::Acquire {
                                receiver: receiver.clone(),
                                line,
                                held,
                            });
                            // Bound guard only when the statement is exactly
                            // `let g = <recv>.lock();` — the acquisition's
                            // `()` immediately followed by `;`.
                            if let Some(binding) = pending_let.clone() {
                                if punct_at(toks, paren + 2) == Some(';') {
                                    scopes.last_mut().unwrap().push(Held {
                                        binding,
                                        receiver,
                                        acquired_line: line,
                                    });
                                    pending_let = None;
                                }
                            }
                            i = paren + 1;
                            continue;
                        }
                        if FALLIBLE_IO_METHODS.contains(&method.as_str()) {
                            if let Some(how) = discarded(paren, discard_let, stmt_bound) {
                                events.push(Event::Discard {
                                    method: method.clone(),
                                    how,
                                    line,
                                });
                            }
                        }
                        if BARRIER_METHODS.contains(&method.as_str()) {
                            events.push(Event::Barrier {
                                method: method.clone(),
                                receiver,
                                line,
                                in_unlocked: in_unlocked(i),
                                held: held_now(&scopes),
                            });
                            i = paren;
                            continue;
                        }
                        if PANIC_METHODS.contains(&method.as_str()) {
                            events.push(Event::Panic {
                                what: format!(".{method}()"),
                                line,
                            });
                            i = paren;
                            continue;
                        }
                        events.push(Event::Call {
                            name: method,
                            recv: (receiver != "?").then_some(receiver),
                            closure_args: closure_args_of(paren),
                            line,
                            held: held_now(&scopes),
                        });
                        i = paren;
                        continue;
                    }
                }
            }
            Tok::Ident(name) => {
                // Macro invocations: only the panic family matters.
                if punct_at(toks, i + 1) == Some('!') && PANIC_MACROS.contains(&name.as_str()) {
                    events.push(Event::Panic {
                        what: format!("{name}!"),
                        line: toks[i].line,
                    });
                    i += 2;
                    continue;
                }
                // Free / associated calls: `name(...)` not preceded by `.`
                // (method calls handled above) or `fn`.
                if let Some(paren) = call_paren_after(toks, i) {
                    if !CALL_KEYWORDS.contains(&name.as_str())
                        && (i == 0 || ident_at(toks, i - 1) != Some("fn"))
                        && punct_at(toks, i.wrapping_sub(1)) != Some('.')
                    {
                        // `drop(guard)` explicitly releases a binding.
                        if name == "drop" && punct_at(toks, paren + 2) == Some(')') {
                            if let Some(arg) = ident_at(toks, paren + 1) {
                                let arg = arg.to_string();
                                for scope in scopes.iter_mut() {
                                    scope.retain(|h| h.binding != arg);
                                }
                                i = paren + 3;
                                continue;
                            }
                        }
                        events.push(Event::Call {
                            name: name.clone(),
                            recv: None,
                            closure_args: closure_args_of(paren),
                            line: toks[i].line,
                            held: held_now(&scopes),
                        });
                    }
                }
            }
            _ => {}
        }
        i += 1;
    }
    (events, locals)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn facts(src: &str) -> FileFacts {
        extract("test.rs", src)
    }

    #[test]
    fn guard_binding_and_extent() {
        let f = facts(
            r#"
fn f(&self) {
    {
        let g = self.state.lock();
        self.file.sync()?;
    }
    self.file.sync()?;
}
"#,
        );
        let ev = &f.functions[0].events;
        let barriers: Vec<_> = ev
            .iter()
            .filter_map(|e| match e {
                Event::Barrier { held, .. } => Some(held.len()),
                _ => None,
            })
            .collect();
        assert_eq!(barriers, vec![1, 0], "guard dies at block end");
    }

    #[test]
    fn temporary_guard_not_bound() {
        let f = facts("fn f(&self) { let n = self.versions.lock().next(); self.file.sync()?; }");
        let ev = &f.functions[0].events;
        assert!(ev.iter().any(|e| matches!(e, Event::Acquire { .. })));
        let held = ev
            .iter()
            .find_map(|e| match e {
                Event::Barrier { held, .. } => Some(held.len()),
                _ => None,
            })
            .unwrap();
        assert_eq!(held, 0, "chained call is not a guard binding");
    }

    #[test]
    fn drop_releases_binding() {
        let f = facts("fn f(&self) { let g = self.state.lock(); drop(g); self.file.sync()?; }");
        let held = f.functions[0]
            .events
            .iter()
            .find_map(|e| match e {
                Event::Barrier { held, .. } => Some(held.len()),
                _ => None,
            })
            .unwrap();
        assert_eq!(held, 0);
    }

    #[test]
    fn cfg_test_regions_marked() {
        let f = facts(
            r#"
fn live(&self) { self.x.unwrap(); }
#[cfg(test)]
mod tests {
    fn helper() { x.unwrap(); }
    #[test]
    fn t() { y.unwrap(); }
}
"#,
        );
        let by_name: HashMap<_, _> = f
            .functions
            .iter()
            .map(|f| (f.name.as_str(), f.in_test))
            .collect();
        assert!(!by_name["live"]);
        assert!(by_name["helper"]);
        assert!(by_name["t"]);
    }

    #[test]
    fn unlocked_span_suppresses() {
        let f = facts(
            r#"
fn f(&self) {
    let mut state = self.state.lock();
    MutexGuard::unlocked(&mut state, || { wal.sync() })?;
    wal.sync()?;
}
"#,
        );
        let flags: Vec<bool> = f.functions[0]
            .events
            .iter()
            .filter_map(|e| match e {
                Event::Barrier { in_unlocked, .. } => Some(*in_unlocked),
                _ => None,
            })
            .collect();
        assert_eq!(flags, vec![true, false]);
    }

    #[test]
    fn allow_comments_parsed() {
        let f = facts("// bolt-lint: allow(lock-order, unsynced-commit)\nfn f() {}\n");
        assert!(f.allowed("lock-order", 1));
        assert!(f.allowed("unsynced-commit", 2), "line-above allows apply");
        assert!(!f.allowed("guard-across-barrier", 1));
        assert_eq!(f.allowed_at("lock-order", 2), Some(1));
    }

    #[test]
    fn doc_comments_do_not_register_allows() {
        let f = facts(
            "/// Suppress with `// bolt-lint: allow(lock-order)`.\n\
             //! Module docs: bolt-lint: allow(unsynced-commit) syntax.\n\
             fn f() {}\n",
        );
        assert!(f.allows.is_empty(), "doc comments must not create allows");
    }

    #[test]
    fn nested_fn_events_not_double_counted() {
        let f = facts("fn outer() { fn inner() { x.unwrap(); } }");
        let outer = f.functions.iter().find(|f| f.name == "outer").unwrap();
        assert!(outer.events.is_empty());
        let inner = f.functions.iter().find(|f| f.name == "inner").unwrap();
        assert_eq!(inner.events.len(), 1);
    }

    #[test]
    fn named_lock_registrations_extracted() {
        let f = facts(
            r#"
fn build() {
    let a = named_mutex("core.state", State::new());
    let b = named_rwlock("core.table", ());
    let c = TrackedMutex::named("core.tracked", ());
    let d = Mutex::named(name, value); // forwarded ident, not a literal
}
#[cfg(test)]
mod tests {
    fn t() { let x = named_mutex("test.only", ()); }
}
"#,
        );
        let live: Vec<&str> = f
            .named_locks
            .iter()
            .filter(|l| !l.in_test)
            .map(|l| l.name.as_str())
            .collect();
        assert_eq!(live, vec!["core.state", "core.table", "core.tracked"]);
        assert!(f
            .named_locks
            .iter()
            .any(|l| l.in_test && l.name == "test.only"));
    }

    #[test]
    fn receiver_through_call_parens() {
        let f = facts("fn f(&self) { let g = self.shard(key).lock(); }");
        let recv = f.functions[0]
            .events
            .iter()
            .find_map(|e| match e {
                Event::Acquire { receiver, .. } => Some(receiver.clone()),
                _ => None,
            })
            .unwrap();
        assert_eq!(recv, "shard");
    }

    #[test]
    fn impl_blocks_assign_self_and_trait() {
        let f = facts(
            r#"
impl Db {
    fn close(&self) {}
}
impl CompactionPolicy for TieredPolicy {
    fn pick(&self) {}
}
impl std::fmt::Debug for ShardedDb {
    fn fmt(&self, f: &mut Formatter) {}
}
trait Env {
    fn sync(&self) -> Result<()>;
    fn default_helper(&self) { x.unwrap(); }
}
"#,
        );
        let by_name: HashMap<&str, &FnFacts> =
            f.functions.iter().map(|g| (g.name.as_str(), g)).collect();
        assert_eq!(by_name["close"].self_ty.as_deref(), Some("Db"));
        assert_eq!(by_name["close"].trait_name, None);
        assert_eq!(by_name["pick"].self_ty.as_deref(), Some("TieredPolicy"));
        assert_eq!(
            by_name["pick"].trait_name.as_deref(),
            Some("CompactionPolicy")
        );
        assert_eq!(by_name["fmt"].self_ty.as_deref(), Some("ShardedDb"));
        assert_eq!(by_name["fmt"].trait_name.as_deref(), Some("Debug"));
        assert_eq!(by_name["default_helper"].trait_name.as_deref(), Some("Env"));
        assert_eq!(by_name["default_helper"].self_ty, None);
        let env = f.traits.iter().find(|t| t.name == "Env").unwrap();
        assert!(env.methods.contains("sync") && env.methods.contains("default_helper"));
    }

    #[test]
    fn param_and_local_types_with_nested_generics() {
        let f = facts(
            r#"
fn f(a: &Mutex<State>, b: Arc<Mutex<TxnLog>>, c: &dyn Env, d: impl CompactionPolicy, e: &[u8]) {
    let log = TxnLog::create(&env, path);
    let marker = ShardTxnMarker { txn_id, shard_bitmap };
    let opts: Options = defaults();
    let lower = txn::decode(&rec);
}
"#,
        );
        let g = &f.functions[0];
        let params: HashMap<_, _> = g.params.iter().cloned().collect();
        assert_eq!(params["a"], "Mutex");
        assert_eq!(params["b"], "Mutex", "Arc wrapper unwrapped");
        assert_eq!(params["c"], "Env", "dyn stripped");
        assert_eq!(params["d"], "CompactionPolicy", "impl Trait arg");
        assert_eq!(params["e"], "?", "slices have no type head");
        assert_eq!(g.locals["log"], "TxnLog", "Type::ctor call");
        assert_eq!(g.locals["marker"], "ShardTxnMarker", "struct literal");
        assert_eq!(g.locals["opts"], "Options", "let ascription");
        assert!(!g.locals.contains_key("lower"), "module path is not a type");
    }

    #[test]
    fn generic_bounds_map_params() {
        let f = facts("fn helper<F: Fn()>(state: &Mutex<S>, callback: F) { callback(); }");
        let params: HashMap<_, _> = f.functions[0].params.iter().cloned().collect();
        assert_eq!(params["callback"], "Fn");
    }

    #[test]
    fn struct_fields_indexed() {
        let f = facts(
            r#"
pub struct ShardedDb {
    name: String,
    shards: Vec<Arc<Db>>,
    epoch: RwLock<()>,
    txnlog: Mutex<TxnLog>,
    policy: Arc<dyn CompactionPolicy>,
}
struct Unit;
struct Tuple(u32, u32);
"#,
        );
        let fields = &f.structs["ShardedDb"];
        assert_eq!(fields["txnlog"], "Mutex");
        assert_eq!(fields["policy"], "CompactionPolicy");
        assert_eq!(fields["shards"], "Vec");
        assert!(!f.structs.contains_key("Tuple"));
    }

    #[test]
    fn turbofish_calls_detected() {
        let f =
            facts("fn f(&self) { let v = xs.collect::<Vec<_>>(); parse::<u32>(text); s.lock(); }");
        let names: Vec<String> = f.functions[0]
            .events
            .iter()
            .filter_map(|e| match e {
                Event::Call { name, .. } => Some(name.clone()),
                _ => None,
            })
            .collect();
        assert!(names.contains(&"collect".to_string()), "method turbofish");
        assert!(names.contains(&"parse".to_string()), "free-fn turbofish");
        assert!(
            f.functions[0]
                .events
                .iter()
                .any(|e| matches!(e, Event::Acquire { .. })),
            "acquire after turbofish still seen"
        );
    }

    #[test]
    fn raw_strings_do_not_derail_extraction() {
        let f = facts(
            r###"
fn f(&self) {
    let re = r#"a "lock()" b"#;
    let g = self.state.lock();
    self.file.sync()?;
}
"###,
        );
        let held = f.functions[0]
            .events
            .iter()
            .find_map(|e| match e {
                Event::Barrier { held, .. } => Some(held.len()),
                _ => None,
            })
            .unwrap();
        assert_eq!(held, 1, "raw string is opaque; guard still tracked");
    }

    #[test]
    fn closure_args_recorded_on_calls_and_pseudo_fns_extracted() {
        let f = facts(
            r#"
fn caller(&self) {
    helper(state, || {
        let v = versions.lock();
        drop(v);
    });
}
"#,
        );
        let caller = f.functions.iter().find(|g| g.name == "caller").unwrap();
        let call = caller
            .events
            .iter()
            .find_map(|e| match e {
                Event::Call {
                    name, closure_args, ..
                } if name == "helper" => Some(closure_args.clone()),
                _ => None,
            })
            .unwrap();
        assert_eq!(call.len(), 1, "closure literal recorded as an argument");
        let pseudo = f.functions.iter().find(|g| g.is_closure).unwrap();
        assert_eq!(pseudo.name, call[0]);
        assert!(
            pseudo
                .events
                .iter()
                .any(|e| matches!(e, Event::Acquire { receiver, .. } if receiver == "versions")),
            "closure body extracted standalone"
        );
        assert!(
            caller
                .events
                .iter()
                .any(|e| matches!(e, Event::Acquire { receiver, .. } if receiver == "versions")),
            "closure body also stays inline in the enclosing function"
        );
    }

    #[test]
    fn method_chain_ending_in_closure_arg() {
        let f = facts("fn f(&self) { items.iter().map(|x| x.lock()).count(); }");
        let main = &f.functions[0];
        let map_call = main.events.iter().find_map(|e| match e {
            Event::Call {
                name, closure_args, ..
            } if name == "map" => Some(closure_args.clone()),
            _ => None,
        });
        assert_eq!(map_call.unwrap().len(), 1);
        let pseudo = f.functions.iter().find(|g| g.is_closure).unwrap();
        assert!(pseudo
            .events
            .iter()
            .any(|e| matches!(e, Event::Acquire { .. })));
    }

    #[test]
    fn closure_pipe_is_not_binary_or() {
        let f = facts("fn f() { let x = a | b; let y = flags.fold(0, |acc, v| acc | v); }");
        let closures: Vec<_> = f.functions.iter().filter(|g| g.is_closure).collect();
        assert_eq!(closures.len(), 1, "only the fold callback is a closure");
    }

    #[test]
    fn discarded_fallible_results_detected() {
        let f = facts(
            r#"
fn f(&self) {
    let _ = self.file.sync();
    self.wal.append(rec).ok();
    self.manifest.add_record(rec);
    self.file.sync()?;
    let r = self.file.sync();
    let _ = self.file.sync()?;
}
"#,
        );
        let discards: Vec<(String, &str)> = f.functions[0]
            .events
            .iter()
            .filter_map(|e| match e {
                Event::Discard { method, how, .. } => Some((method.clone(), *how)),
                _ => None,
            })
            .collect();
        assert_eq!(
            discards,
            vec![
                ("sync".to_string(), "let _ ="),
                ("append".to_string(), ".ok()"),
                ("add_record".to_string(), "unused return"),
            ],
            "`?`-propagated and bound results are not discards"
        );
    }
}

//! `bolt-lint` CLI: `bolt-lint check [PATH] [--config FILE] [--json]`.

use std::path::PathBuf;
use std::process::ExitCode;

fn usage() -> ExitCode {
    eprintln!(
        "usage: bolt-lint check [PATH] [--config FILE] [--json]\n\
         \n\
         Static barrier-ordering / lock-discipline analysis over the Rust\n\
         sources under PATH (default: current directory). The lock order is\n\
         read from PATH/lint/lock_order.toml unless --config overrides it.\n\
         With --json, findings are emitted as JSON Lines matching\n\
         schemas/lint.schema.json. Exit code 1 when unannotated error\n\
         findings exist (warnings alone stay 0)."
    );
    ExitCode::from(2)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut it = args.iter();
    match it.next().map(String::as_str) {
        Some("check") => {}
        _ => return usage(),
    }
    let mut root: Option<PathBuf> = None;
    let mut config: Option<PathBuf> = None;
    let mut json = false;
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--config" => match it.next() {
                Some(p) => config = Some(PathBuf::from(p)),
                None => return usage(),
            },
            "--json" => json = true,
            p if root.is_none() && !p.starts_with('-') => root = Some(PathBuf::from(p)),
            _ => return usage(),
        }
    }
    let root = root.unwrap_or_else(|| PathBuf::from("."));
    ExitCode::from(u8::try_from(bolt_lint::run_check(&root, config.as_deref(), json)).unwrap_or(2))
}

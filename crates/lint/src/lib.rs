//! # bolt-lint
//!
//! Barrier-ordering and lock-discipline static analyzer for the BoLT
//! workspace. Dependency-free: a hand-rolled tokenizer ([`lexer`]),
//! per-function fact extraction ([`facts`]), and five rules ([`rules`])
//! checked against the declared lock order in `lint/lock_order.toml`
//! ([`config`]).
//!
//! Run as `cargo run -p bolt-lint -- check .` (or `bolt-tool lint`); CI
//! treats any unannotated finding as a failure. Suppress a reviewed finding
//! with `// bolt-lint: allow(<rule>)` on the same line or the line above.
//! See DESIGN.md §10 for the rule catalogue.

#![warn(missing_docs)]

pub mod config;
pub mod facts;
pub mod lexer;
pub mod rules;

use std::path::{Path, PathBuf};

pub use config::Config;
pub use rules::Finding;

/// Directory names never descended into, and path fragments excluded from
/// analysis. `shims/` contains stand-ins for third-party crates (vendored
/// dependency code is not ours to lint); `tests/corpus/` holds bolt-lint's
/// own seeded violations.
const SKIP_DIRS: [&str; 3] = ["target", ".git", "node_modules"];
const SKIP_FRAGMENTS: [&str; 2] = ["/tests/corpus/", "/shims/"];

/// Analyze in-memory sources: `(path, contents)` pairs. The entry point the
/// corpus tests use; [`check_root`] is the filesystem front door.
pub fn analyze_sources(sources: &[(String, String)], cfg: &Config) -> Vec<Finding> {
    let files: Vec<facts::FileFacts> = sources
        .iter()
        .map(|(path, src)| facts::extract(path, src))
        .collect();
    rules::run(&files, cfg)
}

/// Recursively collect `.rs` files under `root`, honoring the skip lists.
pub fn collect_rs_files(root: &Path) -> Result<Vec<PathBuf>, String> {
    let mut out = Vec::new();
    let mut stack = vec![root.to_path_buf()];
    while let Some(dir) = stack.pop() {
        let entries =
            std::fs::read_dir(&dir).map_err(|e| format!("read_dir {}: {e}", dir.display()))?;
        for entry in entries {
            let entry = entry.map_err(|e| format!("read_dir {}: {e}", dir.display()))?;
            let path = entry.path();
            let name = entry.file_name().to_string_lossy().to_string();
            let ty = entry
                .file_type()
                .map_err(|e| format!("stat {}: {e}", path.display()))?;
            if ty.is_dir() {
                if SKIP_DIRS.contains(&name.as_str()) || name.starts_with('.') {
                    continue;
                }
                stack.push(path);
            } else if name.ends_with(".rs") {
                let p = path.to_string_lossy().replace('\\', "/");
                if SKIP_FRAGMENTS.iter().any(|f| p.contains(f)) {
                    continue;
                }
                out.push(path);
            }
        }
    }
    out.sort();
    Ok(out)
}

/// Analyze every `.rs` file under `root` with the config at
/// `root/lint/lock_order.toml` (or built-in defaults when absent).
/// Returns unsuppressed findings sorted by file and line.
pub fn check_root(root: &Path, config_path: Option<&Path>) -> Result<Vec<Finding>, String> {
    let cfg_path = config_path
        .map(Path::to_path_buf)
        .unwrap_or_else(|| root.join("lint/lock_order.toml"));
    let cfg = if cfg_path.exists() {
        let text = std::fs::read_to_string(&cfg_path)
            .map_err(|e| format!("read {}: {e}", cfg_path.display()))?;
        Config::parse(&text)?
    } else {
        Config::default_rules()
    };
    let mut sources = Vec::new();
    for path in collect_rs_files(root)? {
        let text =
            std::fs::read_to_string(&path).map_err(|e| format!("read {}: {e}", path.display()))?;
        // Report paths relative to the checked root for stable output.
        let rel = path
            .strip_prefix(root)
            .unwrap_or(&path)
            .to_string_lossy()
            .replace('\\', "/");
        sources.push((rel, text));
    }
    Ok(analyze_sources(&sources, &cfg))
}

/// CLI driver shared by the `bolt-lint` binary and `bolt-tool lint`:
/// analyze, print findings, return the process exit code (0 clean,
/// 1 findings, 2 usage/config error).
pub fn run_check(root: &Path, config_path: Option<&Path>) -> i32 {
    match check_root(root, config_path) {
        Ok(findings) => {
            for f in &findings {
                println!("{}:{}: [{}] {}", f.file, f.line, f.rule, f.message);
            }
            if findings.is_empty() {
                println!("bolt-lint: clean ({} ok)", root.display());
                0
            } else {
                println!(
                    "bolt-lint: {} finding(s); annotate reviewed sites with \
                     `// bolt-lint: allow(<rule>)`",
                    findings.len()
                );
                1
            }
        }
        Err(e) => {
            eprintln!("bolt-lint: error: {e}");
            2
        }
    }
}

//! # bolt-lint
//!
//! Barrier-ordering and lock-discipline static analyzer for the BoLT
//! workspace. Dependency-free: a hand-rolled tokenizer ([`lexer`]),
//! per-function fact extraction with a type-aware call-graph resolver
//! ([`facts`]), and seven rules plus dead-suppression detection
//! ([`rules`]) checked against the declared lock order in
//! `lint/lock_order.toml` ([`config`]).
//!
//! Run as `cargo run -p bolt-lint -- check .` (or `bolt-tool lint`); CI
//! treats any unannotated error finding as a failure and validates the
//! `--json` stream against `schemas/lint.schema.json`. Suppress a reviewed
//! finding with `// bolt-lint: allow(<rule>)` on the same line or the line
//! above — allows that suppress nothing are themselves reported (warn).
//! See DESIGN.md §10 for the rule catalogue and resolution strategy.

#![warn(missing_docs)]

pub mod config;
pub mod facts;
pub mod lexer;
pub mod rules;

use std::path::{Path, PathBuf};

pub use config::Config;
pub use rules::{Finding, Severity};

/// Directory names never descended into, and path fragments excluded from
/// analysis. `shims/` contains stand-ins for third-party crates (vendored
/// dependency code is not ours to lint); `tests/corpus/` holds bolt-lint's
/// own seeded violations.
const SKIP_DIRS: [&str; 3] = ["target", ".git", "node_modules"];
const SKIP_FRAGMENTS: [&str; 2] = ["/tests/corpus/", "/shims/"];

/// Analyze in-memory sources: `(path, contents)` pairs. The entry point the
/// corpus tests use; [`check_root`] is the filesystem front door.
pub fn analyze_sources(sources: &[(String, String)], cfg: &Config) -> Vec<Finding> {
    let files: Vec<facts::FileFacts> = sources
        .iter()
        .map(|(path, src)| facts::extract(path, src))
        .collect();
    rules::run(&files, cfg)
}

/// Recursively collect `.rs` files under `root`, honoring the skip lists.
pub fn collect_rs_files(root: &Path) -> Result<Vec<PathBuf>, String> {
    let mut out = Vec::new();
    let mut stack = vec![root.to_path_buf()];
    while let Some(dir) = stack.pop() {
        let entries =
            std::fs::read_dir(&dir).map_err(|e| format!("read_dir {}: {e}", dir.display()))?;
        for entry in entries {
            let entry = entry.map_err(|e| format!("read_dir {}: {e}", dir.display()))?;
            let path = entry.path();
            let name = entry.file_name().to_string_lossy().to_string();
            let ty = entry
                .file_type()
                .map_err(|e| format!("stat {}: {e}", path.display()))?;
            if ty.is_dir() {
                if SKIP_DIRS.contains(&name.as_str()) || name.starts_with('.') {
                    continue;
                }
                stack.push(path);
            } else if name.ends_with(".rs") {
                let p = path.to_string_lossy().replace('\\', "/");
                if SKIP_FRAGMENTS.iter().any(|f| p.contains(f)) {
                    continue;
                }
                out.push(path);
            }
        }
    }
    out.sort();
    Ok(out)
}

/// Analyze every `.rs` file under `root` with the config at
/// `root/lint/lock_order.toml` (or built-in defaults when absent).
/// Returns unsuppressed findings sorted by file and line.
pub fn check_root(root: &Path, config_path: Option<&Path>) -> Result<Vec<Finding>, String> {
    let cfg_path = config_path
        .map(Path::to_path_buf)
        .unwrap_or_else(|| root.join("lint/lock_order.toml"));
    let cfg = if cfg_path.exists() {
        let text = std::fs::read_to_string(&cfg_path)
            .map_err(|e| format!("read {}: {e}", cfg_path.display()))?;
        Config::parse(&text)?
    } else {
        Config::default_rules()
    };
    let mut sources = Vec::new();
    for path in collect_rs_files(root)? {
        let text =
            std::fs::read_to_string(&path).map_err(|e| format!("read {}: {e}", path.display()))?;
        // Report paths relative to the checked root for stable output.
        let rel = path
            .strip_prefix(root)
            .unwrap_or(&path)
            .to_string_lossy()
            .replace('\\', "/");
        sources.push((rel, text));
    }
    Ok(analyze_sources(&sources, &cfg))
}

/// Render findings as JSON Lines, one object per finding, matching
/// `schemas/lint.schema.json`. Hand-rolled emission (no serde in this
/// workspace); paths and messages are escaped per RFC 8259.
pub fn findings_json_lines(findings: &[Finding]) -> String {
    let mut out = String::new();
    for f in findings {
        out.push_str(&format!(
            "{{\"file\":\"{}\",\"line\":{},\"rule\":\"{}\",\"severity\":\"{}\",\"message\":\"{}\"}}\n",
            json_escape(&f.file),
            f.line,
            f.rule,
            f.severity.as_str(),
            json_escape(&f.message),
        ));
    }
    out
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// CLI driver shared by the `bolt-lint` binary and `bolt-tool lint`:
/// analyze, print findings (human text, or JSON Lines with `json`), return
/// the process exit code (0 clean or warnings only, 1 error findings,
/// 2 usage/config error).
pub fn run_check(root: &Path, config_path: Option<&Path>, json: bool) -> i32 {
    match check_root(root, config_path) {
        Ok(findings) => {
            let errors = findings
                .iter()
                .filter(|f| f.severity == Severity::Error)
                .count();
            if json {
                print!("{}", findings_json_lines(&findings));
                return i32::from(errors > 0);
            }
            for f in &findings {
                let tag = match f.severity {
                    Severity::Error => "",
                    Severity::Warn => "warning ",
                };
                println!("{}:{}: {tag}[{}] {}", f.file, f.line, f.rule, f.message);
            }
            if findings.is_empty() {
                println!("bolt-lint: clean ({} ok)", root.display());
            } else {
                println!(
                    "bolt-lint: {} error(s), {} warning(s); annotate reviewed sites with \
                     `// bolt-lint: allow(<rule>)`",
                    errors,
                    findings.len() - errors
                );
            }
            i32::from(errors > 0)
        }
        Err(e) => {
            eprintln!("bolt-lint: error: {e}");
            2
        }
    }
}

//! Hand-rolled Rust tokenizer: just enough lexical structure for lock and
//! barrier fact extraction. No dependency on syn/proc-macro — the workspace
//! builds offline.
//!
//! The lexer produces identifiers, single-character punctuation, numeric and
//! string literals (contents discarded), and records every `//` comment so
//! the driver can honor `// bolt-lint: allow(<rule>)` escape hatches.

/// One lexical token.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Tok {
    /// Identifier or keyword.
    Ident(String),
    /// Single punctuation character (`::` is two `:` tokens).
    Punct(char),
    /// Numeric literal (value discarded).
    Num,
    /// String / char / byte literal, carrying its raw contents (escape
    /// sequences are kept verbatim; rule L5 matches lock names, which never
    /// contain escapes).
    Lit(String),
    /// Lifetime such as `'a` (name discarded).
    Lifetime,
}

/// A token plus the 1-based source line it starts on.
#[derive(Debug, Clone)]
pub struct Token {
    /// The token kind and payload.
    pub tok: Tok,
    /// 1-based line the token starts on.
    pub line: u32,
}

/// Result of lexing one file.
pub struct Lexed {
    /// All tokens in source order.
    pub tokens: Vec<Token>,
    /// `(line, comment text)` for every `//` comment.
    pub comments: Vec<(u32, String)>,
}

/// Tokenize Rust source. Unterminated literals are tolerated (the rest of
/// the file is consumed as the literal) — the analyzer favors robustness
/// over precision.
pub fn lex(src: &str) -> Lexed {
    let b: Vec<char> = src.chars().collect();
    let mut i = 0usize;
    let mut line = 1u32;
    let mut tokens = Vec::new();
    let mut comments = Vec::new();

    let is_ident_start = |c: char| c.is_alphabetic() || c == '_';
    let is_ident_cont = |c: char| c.is_alphanumeric() || c == '_';

    while i < b.len() {
        let c = b[i];
        if c == '\n' {
            line += 1;
            i += 1;
            continue;
        }
        if c.is_whitespace() {
            i += 1;
            continue;
        }
        // Comments.
        if c == '/' && i + 1 < b.len() {
            if b[i + 1] == '/' {
                let start = i + 2;
                let mut j = start;
                while j < b.len() && b[j] != '\n' {
                    j += 1;
                }
                comments.push((line, b[start..j].iter().collect()));
                i = j;
                continue;
            }
            if b[i + 1] == '*' {
                let mut depth = 1;
                let mut j = i + 2;
                while j < b.len() && depth > 0 {
                    if b[j] == '\n' {
                        line += 1;
                        j += 1;
                    } else if b[j] == '/' && j + 1 < b.len() && b[j + 1] == '*' {
                        depth += 1;
                        j += 2;
                    } else if b[j] == '*' && j + 1 < b.len() && b[j + 1] == '/' {
                        depth -= 1;
                        j += 2;
                    } else {
                        j += 1;
                    }
                }
                i = j;
                continue;
            }
        }
        // Raw strings and raw identifiers: r"..." / r#"..."# / r#ident /
        // byte variants br"..."; plain byte strings b"..." / b'x'.
        if (c == 'r' || c == 'b') && i + 1 < b.len() {
            let (raw_at, is_raw) = if c == 'r' {
                (i + 1, true)
            } else if b[i + 1] == 'r' {
                (i + 2, true)
            } else {
                (i + 1, false)
            };
            if is_raw && raw_at < b.len() && (b[raw_at] == '"' || b[raw_at] == '#') {
                // Count hashes, find the opening quote.
                let mut hashes = 0;
                let mut j = raw_at;
                while j < b.len() && b[j] == '#' {
                    hashes += 1;
                    j += 1;
                }
                if j < b.len() && b[j] == '"' {
                    j += 1;
                    let content_start = j;
                    let mut content_end = b.len();
                    // Scan to closing quote + hashes.
                    'scan: while j < b.len() {
                        if b[j] == '\n' {
                            line += 1;
                            j += 1;
                            continue;
                        }
                        if b[j] == '"' {
                            let mut k = 0;
                            while k < hashes && j + 1 + k < b.len() && b[j + 1 + k] == '#' {
                                k += 1;
                            }
                            if k == hashes {
                                content_end = j;
                                j += 1 + hashes;
                                break 'scan;
                            }
                        }
                        j += 1;
                    }
                    tokens.push(Token {
                        tok: Tok::Lit(b[content_start..content_end].iter().collect()),
                        line,
                    });
                    i = j;
                    continue;
                }
                if hashes > 0 && j < b.len() && is_ident_start(b[j]) {
                    // r#ident raw identifier.
                    let start = j;
                    while j < b.len() && is_ident_cont(b[j]) {
                        j += 1;
                    }
                    tokens.push(Token {
                        tok: Tok::Ident(b[start..j].iter().collect()),
                        line,
                    });
                    i = j;
                    continue;
                }
                // `r #` that was neither: fall through as ident below.
            }
            if !is_raw && (b[i + 1] == '"' || b[i + 1] == '\'') {
                // b"..." or b'x': lex as the corresponding plain literal,
                // skipping the `b` prefix.
                i += 1;
                // fall through to string/char handling with b[i] quote
                let quote = b[i];
                let mut j = i + 1;
                let mut content_end = b.len();
                while j < b.len() {
                    if b[j] == '\\' {
                        j += 2;
                        continue;
                    }
                    if b[j] == '\n' {
                        line += 1;
                    }
                    if b[j] == quote {
                        content_end = j;
                        j += 1;
                        break;
                    }
                    j += 1;
                }
                tokens.push(Token {
                    tok: Tok::Lit(b[i + 1..content_end.min(b.len())].iter().collect()),
                    line,
                });
                i = j;
                continue;
            }
        }
        if c == '"' {
            let mut j = i + 1;
            let mut content_end = b.len();
            while j < b.len() {
                if b[j] == '\\' {
                    j += 2;
                    continue;
                }
                if b[j] == '\n' {
                    line += 1;
                }
                if b[j] == '"' {
                    content_end = j;
                    j += 1;
                    break;
                }
                j += 1;
            }
            tokens.push(Token {
                tok: Tok::Lit(b[i + 1..content_end.min(b.len())].iter().collect()),
                line,
            });
            i = j;
            continue;
        }
        if c == '\'' {
            // Lifetime or char literal. `'a` followed by non-quote = lifetime.
            if i + 1 < b.len() && (is_ident_start(b[i + 1])) {
                // Find end of the ident run.
                let mut j = i + 2;
                while j < b.len() && is_ident_cont(b[j]) {
                    j += 1;
                }
                if j < b.len() && b[j] == '\'' && j == i + 2 {
                    // 'x' single-char literal.
                    tokens.push(Token {
                        tok: Tok::Lit(b[i + 1].to_string()),
                        line,
                    });
                    i = j + 1;
                    continue;
                }
                tokens.push(Token {
                    tok: Tok::Lifetime,
                    line,
                });
                i = j;
                continue;
            }
            // Escaped char literal '\n' or similar.
            let mut j = i + 1;
            if j < b.len() && b[j] == '\\' {
                j += 2;
                while j < b.len() && b[j] != '\'' {
                    j += 1;
                }
                tokens.push(Token {
                    tok: Tok::Lit(b[i + 1..j.min(b.len())].iter().collect()),
                    line,
                });
                i = j + 1;
                continue;
            }
            // Something like '(' char literal.
            if j + 1 < b.len() && b[j + 1] == '\'' {
                tokens.push(Token {
                    tok: Tok::Lit(b[j].to_string()),
                    line,
                });
                i = j + 2;
                continue;
            }
            tokens.push(Token {
                tok: Tok::Punct('\''),
                line,
            });
            i += 1;
            continue;
        }
        if is_ident_start(c) {
            let start = i;
            let mut j = i + 1;
            while j < b.len() && is_ident_cont(b[j]) {
                j += 1;
            }
            tokens.push(Token {
                tok: Tok::Ident(b[start..j].iter().collect()),
                line,
            });
            i = j;
            continue;
        }
        if c.is_ascii_digit() {
            let mut j = i + 1;
            while j < b.len()
                && (is_ident_cont(b[j])
                    || (b[j] == '.' && j + 1 < b.len() && b[j + 1].is_ascii_digit()))
            {
                j += 1;
            }
            tokens.push(Token {
                tok: Tok::Num,
                line,
            });
            i = j;
            continue;
        }
        tokens.push(Token {
            tok: Tok::Punct(c),
            line,
        });
        i += 1;
    }

    Lexed { tokens, comments }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(src: &str) -> Vec<String> {
        lex(src)
            .tokens
            .into_iter()
            .filter_map(|t| match t.tok {
                Tok::Ident(s) => Some(s),
                _ => None,
            })
            .collect()
    }

    #[test]
    fn basic_tokens() {
        let l = lex("let g = state.lock();");
        assert_eq!(
            idents("let g = state.lock();"),
            vec!["let", "g", "state", "lock"]
        );
        assert_eq!(l.tokens.last().unwrap().tok, Tok::Punct(';'));
    }

    #[test]
    fn strings_and_chars_are_opaque() {
        assert_eq!(
            idents(r#"f("x.lock()"); g('{'); h One"#),
            vec!["f", "g", "h", "One"]
        );
    }

    #[test]
    fn raw_strings() {
        assert_eq!(idents(r###"f(r#"a "quote" b"#) tail"###), vec!["f", "tail"]);
    }

    #[test]
    fn lifetimes_vs_char_literals() {
        let toks = lex("fn f<'a>(x: &'a str) { let c = 'y'; }");
        assert!(toks.tokens.iter().any(|t| t.tok == Tok::Lifetime));
        assert!(toks
            .tokens
            .iter()
            .any(|t| t.tok == Tok::Lit("y".to_string())));
    }

    #[test]
    fn string_literal_contents_are_kept() {
        let toks = lex(r###"f("core.state"); g(r#"raw"#); h(b"bytes");"###);
        let lits: Vec<String> = toks
            .tokens
            .into_iter()
            .filter_map(|t| match t.tok {
                Tok::Lit(s) => Some(s),
                _ => None,
            })
            .collect();
        assert_eq!(lits, vec!["core.state", "raw", "bytes"]);
    }

    #[test]
    fn comments_collected_with_lines() {
        let l = lex("a\n// bolt-lint: allow(lock-order)\nb /* block\n still */ c");
        assert_eq!(l.comments.len(), 1);
        assert_eq!(l.comments[0].0, 2);
        assert!(l.comments[0].1.contains("allow(lock-order)"));
        // block comment advanced the line counter
        assert_eq!(l.tokens.last().unwrap().line, 4);
    }

    #[test]
    fn nested_block_comments() {
        assert_eq!(idents("a /* x /* y */ z */ b"), vec!["a", "b"]);
    }
}

//! The bolt-lint rules (DESIGN.md §10):
//!
//! - **L1 `guard-across-barrier`** — a lock guard binding live across an
//!   env-layer `sync`/`ordering_barrier`/`append`/`add_record` call.
//! - **L2 `lock-order`** — acquisition edges vs the declared global order.
//! - **L3 `unwrap-in-crash-path`** — panics in recovery/compaction/WAL code.
//! - **L4 `unsynced-commit`** — MANIFEST append durability ordering.
//! - **L5 `lock-registry`** — named-lock constructors vs `[order].locks`.
//! - **L6 `swallowed-io-error`** — discarded fallible I/O `Result`s in
//!   crash-path / commit-protocol / 2PC modules.
//! - **L7 `decide-before-apply`** — the 2PC commit-point discipline in
//!   `crates/sharded`.
//! - **`dead-allow`** (warn) — suppression comments that suppress nothing.
//!
//! Cross-function reasoning (L2) runs on a type-aware call graph: calls are
//! resolved through the receiver's type when the extractor recovered one
//! (impl blocks, struct fields, params, locals), through *all* implementors
//! when only the trait is known (a sound over-approximation for lock-order
//! edges), by unique name as a last resort, and closures passed as
//! arguments become edges from the locks the callee holds at its callback
//! invocation into the closure body's acquisitions.

use std::collections::{BTreeMap, BTreeSet, HashMap, HashSet};

use crate::config::Config;
use crate::facts::{Event, FileFacts, FnFacts};

/// L1: a lock guard binding live across an env-layer
/// `sync`/`ordering_barrier`/`append`/`add_record` call. WAL and compaction
/// I/O must run outside the engine mutex (the PR-1 group-commit invariant);
/// `MutexGuard::unlocked(...)` spans are exempt.
pub const RULE_GUARD_ACROSS_BARRIER: &str = "guard-across-barrier";
/// L2: every recorded acquisition edge (lock B taken while A held — intra-
/// function, through a resolvable call, or through a closure invoked by the
/// callee) must agree with the global order declared in
/// `lint/lock_order.toml`; any cycle in the edge graph is rejected even
/// among undeclared locks.
pub const RULE_LOCK_ORDER: &str = "lock-order";
/// L3: `unwrap`/`expect`/`panic!`-family in recovery/compaction/WAL modules
/// (`[modules].crash_path`) outside `#[cfg(test)]` — crash-path code must
/// return errors, not panic.
pub const RULE_UNWRAP_IN_CRASH_PATH: &str = "unwrap-in-crash-path";
/// L4: in commit-protocol modules, a MANIFEST append must be dominated by a
/// sync of every data file appended earlier in the function (O1), and
/// followed by a sync of the MANIFEST writer itself (the commit point, O2).
pub const RULE_UNSYNCED_COMMIT: &str = "unsynced-commit";
/// L5: every `named_mutex`/`named_rwlock`/`::named` constructor name must
/// appear in `[order].locks`, and every declared lock in a namespace that
/// registers names must actually be constructed somewhere — the static
/// order and the runtime witness cannot drift.
pub const RULE_LOCK_REGISTRY: &str = "lock-registry";
/// L6: a fallible env/WAL/MANIFEST call (`sync`, `ordering_barrier`,
/// `append`, `add_record`, `rename_file`, `remove_file`) whose `Result` is
/// discarded via `let _ =`, a terminal `.ok()`, or an unused return, inside
/// crash-path, commit-protocol, or 2PC modules. A swallowed I/O error there
/// silently voids the durability argument.
pub const RULE_SWALLOWED_IO_ERROR: &str = "swallowed-io-error";
/// L7: in `crates/sharded` (`[modules].twopc_path`), any call that applies
/// a staged slice (`txn_apply`) must be dominated by a TXNLOG `decide(..)`
/// call in the same function — the A2/A3 commit-point discipline of
/// DESIGN.md §12. Recovery paths that replay markers already durable in the
/// TXNLOG carry a reviewed allow.
pub const RULE_DECIDE_BEFORE_APPLY: &str = "decide-before-apply";
/// Warn-level: a `// bolt-lint: allow(<rule>)` comment that suppressed no
/// finding of that rule. Dead suppressions hide nothing but erode trust in
/// the live ones; delete them. (Not itself suppressible.)
pub const RULE_DEAD_ALLOW: &str = "dead-allow";

/// Methods the 2PC apply rule treats as applying a staged slice.
const APPLY_METHODS: [&str; 1] = ["txn_apply"];
/// Methods the 2PC apply rule treats as the TXNLOG decision point.
const DECIDE_METHODS: [&str; 1] = ["decide"];

/// Finding severity: errors fail the build, warnings only report.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Severity {
    /// Fails `bolt-lint check` (exit code 1).
    Error,
    /// Reported but does not fail the check (dead suppressions).
    Warn,
}

impl Severity {
    /// Lowercase label, as emitted in JSON output.
    pub fn as_str(self) -> &'static str {
        match self {
            Severity::Error => "error",
            Severity::Warn => "warn",
        }
    }
}

/// One reported violation.
#[derive(Debug, Clone)]
pub struct Finding {
    /// Path of the offending file, as analyzed.
    pub file: String,
    /// 1-based source line.
    pub line: u32,
    /// Rule slug (one of the `RULE_*` constants).
    pub rule: &'static str,
    /// Error findings fail the check; warnings are advisory.
    pub severity: Severity,
    /// Human-readable explanation.
    pub message: String,
}

fn error(file: &FileFacts, line: u32, rule: &'static str, message: String) -> Finding {
    Finding {
        file: file.path.clone(),
        line,
        rule,
        severity: Severity::Error,
        message,
    }
}

/// Is this function's code live (linted)? `#[cfg(test)]` unit tests are
/// exempt — they may deliberately exercise bad orders — but integration
/// tests and examples ship crash-consistency claims and are held to the
/// same rules.
fn live(file: &FileFacts, f: &FnFacts) -> bool {
    !f.in_test || file.integration
}

/// Run all rules over the extracted facts. Findings suppressed by allow
/// comments are dropped here (and the allows that earned their keep are
/// recorded); allow comments that suppressed nothing come back as
/// warn-level `dead-allow` findings. The remainder are sorted by file/line.
pub fn run(files: &[FileFacts], cfg: &Config) -> Vec<Finding> {
    let mut findings = Vec::new();
    for file in files {
        guard_across_barrier(file, cfg, &mut findings);
        unwrap_in_crash_path(file, cfg, &mut findings);
        unsynced_commit(file, cfg, &mut findings);
        swallowed_io_error(file, cfg, &mut findings);
        decide_before_apply(file, cfg, &mut findings);
    }
    lock_order(files, cfg, &mut findings);
    lock_registry(files, cfg, &mut findings);

    // Suppression: drop allowed findings, remembering which allow comment
    // lines earned their keep (per rule).
    let mut used: HashSet<(String, u32, String)> = HashSet::new();
    findings.retain(|f| {
        let Some(ff) = files.iter().find(|ff| ff.path == f.file) else {
            return true;
        };
        match ff.allowed_at(f.rule, f.line) {
            Some(comment_line) => {
                used.insert((f.file.clone(), comment_line, f.rule.to_string()));
                false
            }
            None => true,
        }
    });

    // Dead suppressions: every (line, rule) allow entry that suppressed
    // nothing. Deliberately not suppressible itself.
    for file in files {
        let mut lines: Vec<&u32> = file.allows.keys().collect();
        lines.sort();
        for &line in lines {
            for rule in &file.allows[&line] {
                if !used.contains(&(file.path.clone(), line, rule.clone())) {
                    findings.push(Finding {
                        file: file.path.clone(),
                        line,
                        rule: RULE_DEAD_ALLOW,
                        severity: Severity::Warn,
                        message: format!(
                            "`bolt-lint: allow({rule})` suppresses no `{rule}` finding — delete \
                             the stale comment"
                        ),
                    });
                }
            }
        }
    }

    findings.sort_by(|a, b| (&a.file, a.line, a.rule).cmp(&(&b.file, b.line, b.rule)));
    findings
}

fn path_matches(path: &str, suffixes: &[String]) -> bool {
    let normalized = path.replace('\\', "/");
    suffixes.iter().any(|s| {
        if s.ends_with('/') {
            normalized.contains(s.as_str())
        } else {
            normalized.ends_with(s.as_str())
        }
    })
}

/// L1: a live guard binding across an env-layer barrier call. Closure
/// pseudo-functions are skipped — their events are also present inline in
/// the enclosing function, which is where this fires.
fn guard_across_barrier(file: &FileFacts, cfg: &Config, out: &mut Vec<Finding>) {
    for f in &file.functions {
        if !live(file, f) || f.is_closure {
            continue;
        }
        for ev in &f.events {
            let Event::Barrier {
                method,
                line,
                in_unlocked,
                held,
                ..
            } = ev
            else {
                continue;
            };
            if *in_unlocked || held.is_empty() {
                continue;
            }
            let g = &held[0];
            out.push(error(
                file,
                *line,
                RULE_GUARD_ACROSS_BARRIER,
                format!(
                    "`.{method}(..)` while guard `{}` (lock `{}`, acquired line {}) is live in \
                     `{}` — run barriers/appends outside the lock (MutexGuard::unlocked)",
                    g.binding,
                    cfg.canonical(&g.receiver),
                    g.acquired_line,
                    f.name,
                ),
            ));
        }
    }
}

/// L3: panic-family call in a crash-path module outside `#[cfg(test)]`.
fn unwrap_in_crash_path(file: &FileFacts, cfg: &Config, out: &mut Vec<Finding>) {
    if !path_matches(&file.path, &cfg.crash_path) {
        return;
    }
    for f in &file.functions {
        if !live(file, f) || f.is_closure {
            continue;
        }
        for ev in &f.events {
            if let Event::Panic { what, line } = ev {
                out.push(error(
                    file,
                    *line,
                    RULE_UNWRAP_IN_CRASH_PATH,
                    format!(
                        "`{what}` in crash-path function `{}` — recovery/compaction/WAL code \
                         must return errors, not panic",
                        f.name
                    ),
                ));
            }
        }
    }
}

/// L4: MANIFEST append ordering inside commit-protocol modules.
fn unsynced_commit(file: &FileFacts, cfg: &Config, out: &mut Vec<Finding>) {
    if !path_matches(&file.path, &cfg.commit_path) {
        return;
    }
    let is_manifest = |recv: &str| recv.to_ascii_lowercase().contains("manifest");
    let is_sync = |m: &str| m == "sync" || m == "ordering_barrier";
    let is_append = |m: &str| m == "append" || m == "add_record";
    for f in &file.functions {
        if !live(file, f) || f.is_closure {
            continue;
        }
        let barriers: Vec<(usize, &str, &str, u32)> = f
            .events
            .iter()
            .enumerate()
            .filter_map(|(i, e)| match e {
                Event::Barrier {
                    method,
                    receiver,
                    line,
                    ..
                } => Some((i, method.as_str(), receiver.as_str(), *line)),
                _ => None,
            })
            .collect();
        for &(p, method, recv, line) in &barriers {
            if !(is_append(method) && is_manifest(recv)) {
                continue;
            }
            // (a) The MANIFEST writer itself must be synced afterwards — the
            // commit point.
            let committed = barriers
                .iter()
                .any(|&(q, m, r, _)| q > p && is_sync(m) && r == recv);
            if !committed {
                out.push(error(
                    file,
                    line,
                    RULE_UNSYNCED_COMMIT,
                    format!(
                        "MANIFEST append on `{recv}` in `{}` has no following `.sync()` on the \
                         same writer — the commit point never becomes durable (O2)",
                        f.name
                    ),
                ));
            }
            // (b) Every data file appended earlier in this function must be
            // synced before the MANIFEST append (O1).
            let mut last_append: BTreeMap<&str, usize> = BTreeMap::new();
            for &(q, m, r, _) in &barriers {
                if q < p && is_append(m) && !is_manifest(r) {
                    last_append.insert(r, q);
                }
            }
            for (r, &q) in &last_append {
                let synced_between = barriers
                    .iter()
                    .any(|&(s, m, r2, _)| s > q && s < p && is_sync(m) && r2 == *r);
                if !synced_between {
                    out.push(error(
                        file,
                        line,
                        RULE_UNSYNCED_COMMIT,
                        format!(
                            "MANIFEST append on `{recv}` in `{}` is not dominated by a sync of \
                             `{r}` (appended earlier in this function) — data must be durable \
                             before the commit record (O1)",
                            f.name
                        ),
                    ));
                }
            }
        }
    }
}

/// L6: discarded fallible I/O results in crash-path, commit-protocol, or
/// 2PC modules. The extractor already classified the discard shape; this
/// rule only scopes it to the modules where a swallowed error voids the
/// durability argument.
fn swallowed_io_error(file: &FileFacts, cfg: &Config, out: &mut Vec<Finding>) {
    let in_scope = path_matches(&file.path, &cfg.crash_path)
        || path_matches(&file.path, &cfg.commit_path)
        || path_matches(&file.path, &cfg.twopc_path);
    if !in_scope {
        return;
    }
    for f in &file.functions {
        if !live(file, f) || f.is_closure {
            continue;
        }
        for ev in &f.events {
            if let Event::Discard { method, how, line } = ev {
                out.push(error(
                    file,
                    *line,
                    RULE_SWALLOWED_IO_ERROR,
                    format!(
                        "`.{method}(..)` result discarded via `{how}` in `{}` — a swallowed I/O \
                         error here voids the durability argument; propagate it (`?`) or handle \
                         it explicitly",
                        f.name
                    ),
                ));
            }
        }
    }
}

/// L7: in 2PC modules, applying a staged slice must be dominated by a
/// TXNLOG decide in the same function (events are in source order, so
/// "earlier event" approximates domination for the straight-line commit
/// paths this workspace writes).
fn decide_before_apply(file: &FileFacts, cfg: &Config, out: &mut Vec<Finding>) {
    if !path_matches(&file.path, &cfg.twopc_path) {
        return;
    }
    for f in &file.functions {
        if !live(file, f) || f.is_closure {
            continue;
        }
        let mut decided = false;
        for ev in &f.events {
            let Event::Call { name, line, .. } = ev else {
                continue;
            };
            if DECIDE_METHODS.contains(&name.as_str()) {
                decided = true;
            } else if APPLY_METHODS.contains(&name.as_str()) && !decided {
                out.push(error(
                    file,
                    *line,
                    RULE_DECIDE_BEFORE_APPLY,
                    format!(
                        "`.{name}(..)` in `{}` is not dominated by a TXNLOG `decide(..)` — a \
                         shard must never apply a staged slice before the decision record is \
                         durable (DESIGN.md §12 A2/A3)",
                        f.name
                    ),
                ));
            }
        }
    }
}

/// L5: the named-lock registry and the declared order must agree.
///
/// Forward: every non-test `named_mutex`/`named_rwlock`/`::named` constructor
/// name must appear in `[order].locks` (checked only when an order is
/// declared). Reverse: every declared lock whose namespace (the prefix
/// before the first `.`) registers at least one name must itself be
/// registered somewhere — a declared-but-never-constructed lock in a
/// registering namespace is stale. Namespaces with no registrations at all
/// (locks named only via `[aliases]`) are exempt from the reverse check.
fn lock_registry(files: &[FileFacts], cfg: &Config, out: &mut Vec<Finding>) {
    let registered: Vec<(&str, &str, u32)> = files
        .iter()
        .flat_map(|file| {
            file.named_locks
                .iter()
                .filter(|l| !l.in_test)
                .map(move |l| (l.name.as_str(), file.path.as_str(), l.line))
        })
        .collect();
    if registered.is_empty() {
        return;
    }

    if !cfg.order.is_empty() {
        for &(name, file, line) in &registered {
            if cfg.order_index(name).is_none() {
                out.push(Finding {
                    file: file.to_string(),
                    line,
                    rule: RULE_LOCK_REGISTRY,
                    severity: Severity::Error,
                    message: format!(
                        "lock `{name}` is constructed with a name that does not appear in \
                         [order].locks of lint/lock_order.toml — declare it (in order) or \
                         rename the constructor argument"
                    ),
                });
            }
        }
    }

    let namespace = |name: &str| name.split('.').next().unwrap_or(name).to_string();
    let registering: BTreeSet<String> = registered.iter().map(|&(n, _, _)| namespace(n)).collect();
    for declared in &cfg.order {
        let ns = namespace(declared);
        if !registering.contains(&ns) {
            continue;
        }
        if registered.iter().any(|&(n, _, _)| n == declared) {
            continue;
        }
        // Anchor the finding at the namespace's first registration site —
        // the place a reader would look for the missing constructor.
        let &(_, file, line) = registered
            .iter()
            .find(|&&(n, _, _)| namespace(n) == ns)
            .expect("namespace has a registration");
        out.push(Finding {
            file: file.to_string(),
            line,
            rule: RULE_LOCK_REGISTRY,
            severity: Severity::Error,
            message: format!(
                "lock `{declared}` is declared in [order].locks but never constructed via \
                 named_mutex/named_rwlock in namespace `{ns}` — remove the stale entry or \
                 register the lock"
            ),
        });
    }
}

/// Function id: (file index, function index).
type FnId = (usize, usize);

/// Type-aware call resolution over the extracted facts.
///
/// Resolution order for `recv.method(..)`:
/// 1. receiver type known and is a trait → every implementor's method plus
///    the trait's default bodies (sound over-approximation);
/// 2. receiver type known and a matching inherent/impl method exists →
///    exactly those;
/// 3. receiver type known but locally defined with no such method (the call
///    hits a derive or std method) → nothing, rather than a wrong-name
///    guess;
/// 4. receiver type unknown (or a free call) → the definition, if the bare
///    name is globally unique among live functions.
///
/// Closures are never resolution targets by name; they enter the graph via
/// `closure_args` on the call that passes them.
struct Resolver {
    by_name: HashMap<String, Vec<FnId>>,
    methods: HashMap<(String, String), Vec<FnId>>,
    trait_methods: HashMap<(String, String), Vec<FnId>>,
    trait_names: BTreeSet<String>,
    /// Types that define at least one indexed method or struct body —
    /// "ours", so an unmatched method on them resolves to nothing instead
    /// of falling back to a name guess.
    local_types: BTreeSet<String>,
    /// Closure pseudo-function name → id.
    closures: HashMap<String, FnId>,
    /// Struct name → field name → type head, across all files.
    fields: HashMap<String, HashMap<String, String>>,
}

impl Resolver {
    fn build(files: &[FileFacts]) -> Resolver {
        let mut r = Resolver {
            by_name: HashMap::new(),
            methods: HashMap::new(),
            trait_methods: HashMap::new(),
            trait_names: BTreeSet::new(),
            local_types: BTreeSet::new(),
            closures: HashMap::new(),
            fields: HashMap::new(),
        };
        for (fi, file) in files.iter().enumerate() {
            for t in &file.traits {
                r.trait_names.insert(t.name.clone());
            }
            for (name, fields) in &file.structs {
                r.local_types.insert(name.clone());
                r.fields
                    .entry(name.clone())
                    .or_default()
                    .extend(fields.iter().map(|(k, v)| (k.clone(), v.clone())));
            }
            for (gi, f) in file.functions.iter().enumerate() {
                if f.is_closure {
                    r.closures.insert(f.name.clone(), (fi, gi));
                    continue;
                }
                if !live(file, f) {
                    continue;
                }
                let id = (fi, gi);
                r.by_name.entry(f.name.clone()).or_default().push(id);
                if let Some(ty) = &f.self_ty {
                    r.local_types.insert(ty.clone());
                    r.methods
                        .entry((ty.clone(), f.name.clone()))
                        .or_default()
                        .push(id);
                }
                if let Some(tr) = &f.trait_name {
                    // Impl of a trait method, or a trait default body.
                    r.trait_methods
                        .entry((tr.clone(), f.name.clone()))
                        .or_default()
                        .push(id);
                }
            }
        }
        r
    }

    /// The receiver's type head, as seen from inside `f`.
    fn type_of(&self, f: &FnFacts, recv: &str) -> Option<String> {
        if recv == "self" {
            return f.self_ty.clone().or_else(|| f.trait_name.clone());
        }
        if let Some(t) = f.locals.get(recv) {
            return Some(t.clone());
        }
        if let Some((_, t)) = f.params.iter().find(|(n, _)| n == recv) {
            return (t != "?").then(|| t.clone());
        }
        // A bare field name: `self.txnlog.lock()` records receiver `txnlog`.
        if let Some(ty) = &f.self_ty {
            if let Some(ft) = self.fields.get(ty).and_then(|m| m.get(recv)) {
                return Some(ft.clone());
            }
        }
        None
    }

    fn unique_by_name(&self, name: &str) -> Vec<FnId> {
        match self.by_name.get(name).map(Vec::as_slice) {
            Some([single]) => vec![*single],
            _ => Vec::new(),
        }
    }

    /// Targets of a call event made from `f`.
    fn resolve(&self, f: &FnFacts, name: &str, recv: Option<&str>) -> Vec<FnId> {
        if let Some(ty) = recv.and_then(|r| self.type_of(f, r)) {
            if self.trait_names.contains(&ty) {
                return self
                    .trait_methods
                    .get(&(ty, name.to_string()))
                    .cloned()
                    .unwrap_or_default();
            }
            if let Some(ms) = self.methods.get(&(ty.clone(), name.to_string())) {
                return ms.clone();
            }
            if self.local_types.contains(&ty) {
                return Vec::new();
            }
            // Foreign type (Vec, HashMap, ...): nothing of ours to resolve.
            return Vec::new();
        }
        self.unique_by_name(name)
    }
}

/// One acquisition-order edge: lock `to` acquired while `from` was held.
#[derive(Debug, Clone)]
struct Edge {
    from: String,
    to: String,
    file: String,
    line: u32,
    via: Option<String>,
}

/// L2: build the global acquisition graph on the type-aware call graph and
/// check it against the declared order; reject cycles.
fn lock_order(files: &[FileFacts], cfg: &Config, out: &mut Vec<Finding>) {
    // `#[cfg(test)]` unit-test code may deliberately exercise bad orders
    // (the debug_locks tests do); it neither defines resolution targets nor
    // contributes edges. Closure pseudo-functions contribute may-sets and
    // callback edges but are not walked for direct edges — their events are
    // duplicated inline in the enclosing function, which is walked.
    let resolver = Resolver::build(files);

    // Fixpoint: the set of canonical lock names each function may acquire,
    // directly or through resolvable calls. Closure bodies are inline in
    // their enclosing functions, so enclosing may-sets subsume callback
    // acquisitions automatically.
    let mut may: HashMap<FnId, BTreeSet<String>> = HashMap::new();
    for (fi, file) in files.iter().enumerate() {
        for (gi, f) in file.functions.iter().enumerate() {
            if !live(file, f) {
                may.insert((fi, gi), BTreeSet::new());
                continue;
            }
            let direct: BTreeSet<String> = f
                .events
                .iter()
                .filter_map(|e| match e {
                    Event::Acquire { receiver, .. } => Some(cfg.canonical(receiver).to_string()),
                    _ => None,
                })
                .collect();
            may.insert((fi, gi), direct);
        }
    }
    loop {
        let mut changed = false;
        for (fi, file) in files.iter().enumerate() {
            for (gi, f) in file.functions.iter().enumerate() {
                if !live(file, f) {
                    continue;
                }
                let mut add = BTreeSet::new();
                for ev in &f.events {
                    if let Event::Call { name, recv, .. } = ev {
                        for callee in resolver.resolve(f, name, recv.as_deref()) {
                            if let Some(locks) = may.get(&callee) {
                                add.extend(locks.iter().cloned());
                            }
                        }
                    }
                }
                let mine = may.get_mut(&(fi, gi)).expect("indexed above");
                let before = mine.len();
                mine.extend(add);
                if mine.len() != before {
                    changed = true;
                }
            }
        }
        if !changed {
            break;
        }
    }

    // Locks a function holds at the points where it invokes one of its own
    // parameters (a callback). Edges flow from these into the bodies of
    // closures passed to it.
    let callback_holds = |id: FnId| -> BTreeSet<String> {
        let f = &files[id.0].functions[id.1];
        let param_names: BTreeSet<&str> = f.params.iter().map(|(n, _)| n.as_str()).collect();
        f.events
            .iter()
            .filter_map(|e| match e {
                Event::Call {
                    name, recv, held, ..
                } if recv.is_none() && param_names.contains(name.as_str()) => Some(held),
                _ => None,
            })
            .flatten()
            .map(|h| cfg.canonical(&h.receiver).to_string())
            .collect()
    };

    // Collect edges.
    let mut edges: Vec<Edge> = Vec::new();
    let mut seen: BTreeSet<(String, String)> = BTreeSet::new();
    let mut push_edge = |edges: &mut Vec<Edge>, e: Edge| {
        if seen.insert((e.from.clone(), e.to.clone())) {
            edges.push(e);
        }
    };
    for file in files {
        for f in &file.functions {
            if !live(file, f) || f.is_closure {
                continue;
            }
            for ev in &f.events {
                match ev {
                    Event::Acquire {
                        receiver,
                        line,
                        held,
                    } => {
                        let to = cfg.canonical(receiver).to_string();
                        for h in held {
                            push_edge(
                                &mut edges,
                                Edge {
                                    from: cfg.canonical(&h.receiver).to_string(),
                                    to: to.clone(),
                                    file: file.path.clone(),
                                    line: *line,
                                    via: None,
                                },
                            );
                        }
                    }
                    Event::Call {
                        name,
                        recv,
                        closure_args,
                        line,
                        held,
                    } => {
                        let targets = resolver.resolve(f, name, recv.as_deref());
                        // Locks the callee may take, while we hold ours.
                        if !held.is_empty() {
                            for callee in &targets {
                                let Some(locks) = may.get(callee) else {
                                    continue;
                                };
                                for h in held {
                                    let from = cfg.canonical(&h.receiver).to_string();
                                    for to in locks {
                                        push_edge(
                                            &mut edges,
                                            Edge {
                                                from: from.clone(),
                                                to: to.clone(),
                                                file: file.path.clone(),
                                                line: *line,
                                                via: Some(name.clone()),
                                            },
                                        );
                                    }
                                }
                            }
                        }
                        // Closures we pass run under whatever the callee
                        // holds at its callback invocation.
                        for cname in closure_args {
                            let Some(&cid) = resolver.closures.get(cname) else {
                                continue;
                            };
                            let Some(closure_locks) = may.get(&cid) else {
                                continue;
                            };
                            if closure_locks.is_empty() {
                                continue;
                            }
                            for callee in &targets {
                                for from in callback_holds(*callee) {
                                    for to in closure_locks {
                                        push_edge(
                                            &mut edges,
                                            Edge {
                                                from: from.clone(),
                                                to: to.clone(),
                                                file: file.path.clone(),
                                                line: *line,
                                                via: Some(format!("closure passed to `{name}`")),
                                            },
                                        );
                                    }
                                }
                            }
                        }
                    }
                    _ => {}
                }
            }
        }
    }

    // Order violations (and self-edges) against the declared order.
    let mut in_cycle_reported: BTreeSet<(String, String)> = BTreeSet::new();
    for e in &edges {
        let via = e
            .via
            .as_ref()
            .map(|v| format!(" (via call to `{v}`)"))
            .unwrap_or_default();
        if e.from == e.to {
            out.push(Finding {
                file: e.file.clone(),
                line: e.line,
                rule: RULE_LOCK_ORDER,
                severity: Severity::Error,
                message: format!(
                    "lock `{}` acquired while already held{via} — self-deadlock",
                    e.from
                ),
            });
            in_cycle_reported.insert((e.from.clone(), e.to.clone()));
            continue;
        }
        if let (Some(a), Some(b)) = (cfg.order_index(&e.from), cfg.order_index(&e.to)) {
            if a >= b {
                out.push(Finding {
                    file: e.file.clone(),
                    line: e.line,
                    rule: RULE_LOCK_ORDER,
                    severity: Severity::Error,
                    message: format!(
                        "lock `{}` acquired while holding `{}`{via} — contradicts the declared \
                         order in lint/lock_order.toml (`{}` before `{}`)",
                        e.to, e.from, e.to, e.from
                    ),
                });
                in_cycle_reported.insert((e.from.clone(), e.to.clone()));
            }
        }
    }

    // Cycles among the remaining edges (covers undeclared locks and
    // cross-function composition). Edges already reported as order
    // contradictions are removed from the graph first — every cycle through
    // one of them is the same defect, already on the report.
    let cycle_edges: Vec<&Edge> = edges
        .iter()
        .filter(|e| !in_cycle_reported.contains(&(e.from.clone(), e.to.clone())))
        .collect();
    let mut adj: BTreeMap<&str, Vec<&Edge>> = BTreeMap::new();
    for e in &cycle_edges {
        adj.entry(e.from.as_str()).or_default().push(e);
    }
    let mut reported_cycles: BTreeSet<Vec<String>> = BTreeSet::new();
    for e in &cycle_edges {
        // Path e.to -> ... -> e.from closes a cycle through e.
        if let Some(path) = find_path(&adj, &e.to, &e.from) {
            let mut cycle: Vec<String> = path.iter().map(|s| s.to_string()).collect();
            cycle.push(e.to.clone());
            // Canonicalize: rotate so the smallest element leads.
            let n = cycle.len() - 1; // last repeats first conceptually
            let min_at = (0..n).min_by_key(|&i| &cycle[i]).unwrap_or(0);
            let canon: Vec<String> = (0..=n).map(|i| cycle[(min_at + i) % n].clone()).collect();
            if reported_cycles.insert(canon.clone()) {
                out.push(Finding {
                    file: e.file.clone(),
                    line: e.line,
                    rule: RULE_LOCK_ORDER,
                    severity: Severity::Error,
                    message: format!(
                        "lock-order cycle: {} — acquiring `{}` while holding `{}` closes it",
                        canon.join(" -> "),
                        e.to,
                        e.from
                    ),
                });
            }
        }
    }
}

fn find_path<'a>(
    adj: &BTreeMap<&'a str, Vec<&'a Edge>>,
    from: &'a str,
    to: &str,
) -> Option<Vec<&'a str>> {
    let mut stack = vec![(from, vec![from])];
    let mut seen = BTreeSet::new();
    while let Some((node, path)) = stack.pop() {
        if node == to {
            return Some(path);
        }
        if !seen.insert(node) {
            continue;
        }
        if let Some(edges) = adj.get(node) {
            for e in edges {
                let mut p = path.clone();
                p.push(e.to.as_str());
                stack.push((e.to.as_str(), p));
            }
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::facts::extract;

    fn cfg() -> Config {
        Config::parse(
            r#"
[order]
locks = ["a.first", "a.second"]
[aliases]
first = "a.first"
second = "a.second"
[modules]
crash_path = ["crash.rs"]
commit_path = []
twopc_path = ["twopc.rs"]
"#,
        )
        .unwrap()
    }

    fn run_on(named: &[(&str, &str)]) -> Vec<Finding> {
        let files: Vec<_> = named.iter().map(|(path, src)| extract(path, src)).collect();
        run(&files, &cfg())
    }

    /// The pre-resolver blind spot: `select` is defined on two implementors,
    /// so name-based resolution (unique names only) could never follow the
    /// call; the receiver-typed resolver must.
    #[test]
    fn trait_method_edge_resolved_through_receiver_type() {
        let src = r#"
trait Victim { fn select(&self) -> usize; }
struct Tiered { first: Mutex<S> }
impl Victim for Tiered {
    fn select(&self) -> usize { let g = self.first.lock(); drop(g); 0 }
}
struct Leveled { first: Mutex<S> }
impl Victim for Leveled {
    fn select(&self) -> usize { let g = self.first.lock(); drop(g); 1 }
}
fn caller(policy: &dyn Victim, second: &Mutex<T>) {
    let s = second.lock();
    policy.select();
    drop(s);
}
"#;
        let findings = run_on(&[("lib.rs", src)]);
        assert!(
            findings
                .iter()
                .any(|f| f.rule == RULE_LOCK_ORDER && f.line == 13),
            "trait-routed a.second -> a.first edge must violate the order: {findings:#?}"
        );
    }

    /// Same blind spot for the `impl Trait` argument spelling.
    #[test]
    fn impl_trait_arg_resolves_like_dyn() {
        let src = r#"
trait Victim { fn select(&self) -> usize; }
struct OnlyImpl { first: Mutex<S> }
impl Victim for OnlyImpl {
    fn select(&self) -> usize { let g = self.first.lock(); drop(g); 0 }
}
struct Decoy;
impl Decoy { fn select(&self) -> usize { 2 } }
fn caller(policy: impl Victim, second: &Mutex<T>) {
    let s = second.lock();
    policy.select();
    drop(s);
}
"#;
        let findings = run_on(&[("lib.rs", src)]);
        assert!(
            findings
                .iter()
                .any(|f| f.rule == RULE_LOCK_ORDER && f.line == 11),
            "impl-Trait receiver must route to the trait impl: {findings:#?}"
        );
    }

    /// A closure passed as a callback runs under the callee's lock; its own
    /// acquisitions must become edges from that lock.
    #[test]
    fn closure_callback_edge_reported_at_call_site() {
        let src = r#"
fn helper<F: Fn()>(second: &Mutex<S>, callback: F) {
    let g = second.lock();
    callback();
    drop(g);
}
fn caller(first: &Mutex<S>, second: &Mutex<T>) {
    helper(second, || {
        let f = first.lock();
        drop(f);
    });
}
"#;
        let findings = run_on(&[("lib.rs", src)]);
        assert!(
            findings
                .iter()
                .any(|f| f.rule == RULE_LOCK_ORDER && f.line == 8),
            "the callback acquires a.first under a.second — an inverted edge: {findings:#?}"
        );
    }

    /// A known foreign receiver type must NOT fall back to name matching:
    /// `map.get(..)` is std's HashMap, not our uniquely-named `get`.
    #[test]
    fn foreign_typed_receiver_does_not_name_match() {
        let src = r#"
fn get(first: &Mutex<S>) { let g = first.lock(); drop(g); }
fn caller(second: &Mutex<T>) {
    let map = HashMap::new();
    let s = second.lock();
    map.get(&1);
    drop(s);
}
"#;
        let findings = run_on(&[("lib.rs", src)]);
        assert!(
            findings.is_empty(),
            "HashMap::get must not resolve to our free `get`: {findings:#?}"
        );
    }

    #[test]
    fn swallowed_io_error_scoped_to_listed_modules() {
        let src = "fn f(w: &mut W) { let _ = w.sync(); }";
        let flagged = run_on(&[("crash.rs", src)]);
        assert!(flagged.iter().any(|f| f.rule == RULE_SWALLOWED_IO_ERROR));
        let clean = run_on(&[("elsewhere.rs", src)]);
        assert!(
            !clean.iter().any(|f| f.rule == RULE_SWALLOWED_IO_ERROR),
            "L6 only applies in crash/commit/2PC modules"
        );
    }

    #[test]
    fn decide_before_apply_orders_events() {
        let good = "fn ok(&self) { self.txnlog.lock().decide(&m)?; self.shard.txn_apply(id)?; }";
        assert!(run_on(&[("twopc.rs", good)]).is_empty());
        let bad = "fn bad(&self) { self.shard.txn_apply(id)?; self.txnlog.lock().decide(&m)?; }";
        let findings = run_on(&[("twopc.rs", bad)]);
        assert!(findings.iter().any(|f| f.rule == RULE_DECIDE_BEFORE_APPLY));
    }

    #[test]
    fn dead_allow_reported_as_warning_and_used_allow_is_not() {
        let src = r#"
fn f(w: &mut W) {
    // bolt-lint: allow(swallowed-io-error)
    let _ = w.sync();
}
fn g() {
    // bolt-lint: allow(lock-order)
    let x = 1;
}
"#;
        let findings = run_on(&[("crash.rs", src)]);
        assert!(
            !findings.iter().any(|f| f.rule == RULE_SWALLOWED_IO_ERROR),
            "allow suppresses the discard"
        );
        let dead: Vec<_> = findings
            .iter()
            .filter(|f| f.rule == RULE_DEAD_ALLOW)
            .collect();
        assert_eq!(
            dead.len(),
            1,
            "only the unused allow is dead: {findings:#?}"
        );
        assert_eq!(dead[0].line, 7);
        assert_eq!(dead[0].severity, Severity::Warn);
    }

    /// Integration-test files (a `tests/` path component) are linted even
    /// inside `#[test]` functions; unit tests stay exempt.
    #[test]
    fn integration_tests_are_live() {
        let src = r#"
#[test]
fn t(first: &Mutex<S>, w: &mut W) {
    let g = first.lock();
    w.sync();
    drop(g);
}
"#;
        let integration = run_on(&[("crates/x/tests/smoke.rs", src)]);
        assert!(integration
            .iter()
            .any(|f| f.rule == RULE_GUARD_ACROSS_BARRIER));
        let unit = run_on(&[("crates/x/src/lib.rs", src)]);
        assert!(unit.is_empty(), "unit-test fns stay exempt: {unit:#?}");
    }
}

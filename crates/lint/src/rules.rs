//! The five bolt-lint rules (DESIGN.md §10):
//!
//! - **L1 `guard-across-barrier`** — a lock guard binding live across an
//!   env-layer `sync`/`ordering_barrier`/`append`/`add_record` call. WAL and
//!   compaction I/O must run outside the engine mutex (the PR-1 group-commit
//!   invariant); `MutexGuard::unlocked(...)` spans are exempt.
//! - **L2 `lock-order`** — every recorded acquisition edge (lock B taken
//!   while A held, intra-function or through a uniquely-resolvable call)
//!   must agree with the global order declared in `lint/lock_order.toml`;
//!   any cycle in the edge graph is rejected even among undeclared locks.
//! - **L3 `unwrap-in-crash-path`** — `unwrap`/`expect`/`panic!`-family in
//!   recovery/compaction/WAL modules outside `#[cfg(test)]`.
//! - **L4 `unsynced-commit`** — in commit-protocol modules, a MANIFEST
//!   append must be dominated by a sync of every data file appended earlier
//!   in the function (O1), and followed by a sync of the MANIFEST writer
//!   itself (the commit point, O2).
//! - **L5 `lock-registry`** — every `named_mutex`/`named_rwlock`/`::named`
//!   constructor name must appear in `[order].locks`, and every declared
//!   lock in a namespace that registers names must actually be constructed
//!   somewhere — the static order and the runtime witness cannot drift.

use std::collections::{BTreeMap, BTreeSet, HashMap};

use crate::config::Config;
use crate::facts::{Event, FileFacts};

/// Rule identifiers, as used in `// bolt-lint: allow(<rule>)`.
pub const RULE_GUARD_ACROSS_BARRIER: &str = "guard-across-barrier";
/// See [`RULE_GUARD_ACROSS_BARRIER`].
pub const RULE_LOCK_ORDER: &str = "lock-order";
/// See [`RULE_GUARD_ACROSS_BARRIER`].
pub const RULE_UNWRAP_IN_CRASH_PATH: &str = "unwrap-in-crash-path";
/// See [`RULE_GUARD_ACROSS_BARRIER`].
pub const RULE_UNSYNCED_COMMIT: &str = "unsynced-commit";
/// See [`RULE_GUARD_ACROSS_BARRIER`].
pub const RULE_LOCK_REGISTRY: &str = "lock-registry";

/// One reported violation.
#[derive(Debug, Clone)]
pub struct Finding {
    /// Path of the offending file, as analyzed.
    pub file: String,
    /// 1-based source line.
    pub line: u32,
    /// Rule slug (one of the `RULE_*` constants).
    pub rule: &'static str,
    /// Human-readable explanation.
    pub message: String,
}

/// Run all rules over the extracted facts. Findings suppressed by allow
/// comments are dropped here; the remainder come back sorted by file/line.
pub fn run(files: &[FileFacts], cfg: &Config) -> Vec<Finding> {
    let mut findings = Vec::new();
    for file in files {
        guard_across_barrier(file, cfg, &mut findings);
        unwrap_in_crash_path(file, cfg, &mut findings);
        unsynced_commit(file, cfg, &mut findings);
    }
    lock_order(files, cfg, &mut findings);
    lock_registry(files, cfg, &mut findings);
    findings.retain(|f| {
        let file = files.iter().find(|ff| ff.path == f.file);
        !file.is_some_and(|ff| ff.allowed(f.rule, f.line))
    });
    findings.sort_by(|a, b| (&a.file, a.line, a.rule).cmp(&(&b.file, b.line, b.rule)));
    findings
}

fn path_matches(path: &str, suffixes: &[String]) -> bool {
    let normalized = path.replace('\\', "/");
    suffixes.iter().any(|s| {
        if s.ends_with('/') {
            normalized.contains(s.as_str())
        } else {
            normalized.ends_with(s.as_str())
        }
    })
}

/// L1: a live guard binding across an env-layer barrier call.
fn guard_across_barrier(file: &FileFacts, cfg: &Config, out: &mut Vec<Finding>) {
    for f in &file.functions {
        if f.in_test {
            continue;
        }
        for ev in &f.events {
            let Event::Barrier {
                method,
                line,
                in_unlocked,
                held,
                ..
            } = ev
            else {
                continue;
            };
            if *in_unlocked || held.is_empty() {
                continue;
            }
            let g = &held[0];
            out.push(Finding {
                file: file.path.clone(),
                line: *line,
                rule: RULE_GUARD_ACROSS_BARRIER,
                message: format!(
                    "`.{method}(..)` while guard `{}` (lock `{}`, acquired line {}) is live in \
                     `{}` — run barriers/appends outside the lock (MutexGuard::unlocked)",
                    g.binding,
                    cfg.canonical(&g.receiver),
                    g.acquired_line,
                    f.name,
                ),
            });
        }
    }
}

/// L3: panic-family call in a crash-path module outside `#[cfg(test)]`.
fn unwrap_in_crash_path(file: &FileFacts, cfg: &Config, out: &mut Vec<Finding>) {
    if !path_matches(&file.path, &cfg.crash_path) {
        return;
    }
    for f in &file.functions {
        if f.in_test {
            continue;
        }
        for ev in &f.events {
            if let Event::Panic { what, line } = ev {
                out.push(Finding {
                    file: file.path.clone(),
                    line: *line,
                    rule: RULE_UNWRAP_IN_CRASH_PATH,
                    message: format!(
                        "`{what}` in crash-path function `{}` — recovery/compaction/WAL code \
                         must return errors, not panic",
                        f.name
                    ),
                });
            }
        }
    }
}

/// L4: MANIFEST append ordering inside commit-protocol modules.
fn unsynced_commit(file: &FileFacts, cfg: &Config, out: &mut Vec<Finding>) {
    if !path_matches(&file.path, &cfg.commit_path) {
        return;
    }
    let is_manifest = |recv: &str| recv.to_ascii_lowercase().contains("manifest");
    let is_sync = |m: &str| m == "sync" || m == "ordering_barrier";
    let is_append = |m: &str| m == "append" || m == "add_record";
    for f in &file.functions {
        if f.in_test {
            continue;
        }
        let barriers: Vec<(usize, &str, &str, u32)> = f
            .events
            .iter()
            .enumerate()
            .filter_map(|(i, e)| match e {
                Event::Barrier {
                    method,
                    receiver,
                    line,
                    ..
                } => Some((i, method.as_str(), receiver.as_str(), *line)),
                _ => None,
            })
            .collect();
        for &(p, method, recv, line) in &barriers {
            if !(is_append(method) && is_manifest(recv)) {
                continue;
            }
            // (a) The MANIFEST writer itself must be synced afterwards — the
            // commit point.
            let committed = barriers
                .iter()
                .any(|&(q, m, r, _)| q > p && is_sync(m) && r == recv);
            if !committed {
                out.push(Finding {
                    file: file.path.clone(),
                    line,
                    rule: RULE_UNSYNCED_COMMIT,
                    message: format!(
                        "MANIFEST append on `{recv}` in `{}` has no following `.sync()` on the \
                         same writer — the commit point never becomes durable (O2)",
                        f.name
                    ),
                });
            }
            // (b) Every data file appended earlier in this function must be
            // synced before the MANIFEST append (O1).
            let mut last_append: BTreeMap<&str, usize> = BTreeMap::new();
            for &(q, m, r, _) in &barriers {
                if q < p && is_append(m) && !is_manifest(r) {
                    last_append.insert(r, q);
                }
            }
            for (r, &q) in &last_append {
                let synced_between = barriers
                    .iter()
                    .any(|&(s, m, r2, _)| s > q && s < p && is_sync(m) && r2 == *r);
                if !synced_between {
                    out.push(Finding {
                        file: file.path.clone(),
                        line,
                        rule: RULE_UNSYNCED_COMMIT,
                        message: format!(
                            "MANIFEST append on `{recv}` in `{}` is not dominated by a sync of \
                             `{r}` (appended earlier in this function) — data must be durable \
                             before the commit record (O1)",
                            f.name
                        ),
                    });
                }
            }
        }
    }
}

/// L5: the named-lock registry and the declared order must agree.
///
/// Forward: every non-test `named_mutex`/`named_rwlock`/`::named` constructor
/// name must appear in `[order].locks` (checked only when an order is
/// declared). Reverse: every declared lock whose namespace (the prefix
/// before the first `.`) registers at least one name must itself be
/// registered somewhere — a declared-but-never-constructed lock in a
/// registering namespace is stale. Namespaces with no registrations at all
/// (locks named only via `[aliases]`) are exempt from the reverse check.
fn lock_registry(files: &[FileFacts], cfg: &Config, out: &mut Vec<Finding>) {
    let registered: Vec<(&str, &str, u32)> = files
        .iter()
        .flat_map(|file| {
            file.named_locks
                .iter()
                .filter(|l| !l.in_test)
                .map(move |l| (l.name.as_str(), file.path.as_str(), l.line))
        })
        .collect();
    if registered.is_empty() {
        return;
    }

    if !cfg.order.is_empty() {
        for &(name, file, line) in &registered {
            if cfg.order_index(name).is_none() {
                out.push(Finding {
                    file: file.to_string(),
                    line,
                    rule: RULE_LOCK_REGISTRY,
                    message: format!(
                        "lock `{name}` is constructed with a name that does not appear in \
                         [order].locks of lint/lock_order.toml — declare it (in order) or \
                         rename the constructor argument"
                    ),
                });
            }
        }
    }

    let namespace = |name: &str| name.split('.').next().unwrap_or(name).to_string();
    let registering: BTreeSet<String> = registered.iter().map(|&(n, _, _)| namespace(n)).collect();
    for declared in &cfg.order {
        let ns = namespace(declared);
        if !registering.contains(&ns) {
            continue;
        }
        if registered.iter().any(|&(n, _, _)| n == declared) {
            continue;
        }
        // Anchor the finding at the namespace's first registration site —
        // the place a reader would look for the missing constructor.
        let &(_, file, line) = registered
            .iter()
            .find(|&&(n, _, _)| namespace(n) == ns)
            .expect("namespace has a registration");
        out.push(Finding {
            file: file.to_string(),
            line,
            rule: RULE_LOCK_REGISTRY,
            message: format!(
                "lock `{declared}` is declared in [order].locks but never constructed via \
                 named_mutex/named_rwlock in namespace `{ns}` — remove the stale entry or \
                 register the lock"
            ),
        });
    }
}

/// One acquisition-order edge: lock `to` acquired while `from` was held.
#[derive(Debug, Clone)]
struct Edge {
    from: String,
    to: String,
    file: String,
    line: u32,
    via: Option<String>,
}

/// L2: build the global acquisition graph and check it against the declared
/// order; reject cycles.
fn lock_order(files: &[FileFacts], cfg: &Config, out: &mut Vec<Finding>) {
    // Function definitions by bare name; calls resolve only when unique.
    // `#[cfg(test)]` code may deliberately exercise bad orders (the
    // debug_locks unit tests do); it neither defines resolution targets nor
    // contributes edges.
    let mut defs: HashMap<&str, Vec<(usize, usize)>> = HashMap::new();
    for (fi, file) in files.iter().enumerate() {
        for (gi, f) in file.functions.iter().enumerate() {
            if f.in_test {
                continue;
            }
            defs.entry(&f.name).or_default().push((fi, gi));
        }
    }
    let resolve = |name: &str| -> Option<(usize, usize)> {
        match defs.get(name).map(Vec::as_slice) {
            Some([single]) => Some(*single),
            _ => None,
        }
    };

    // Fixpoint: the set of canonical lock names each function may acquire,
    // directly or through uniquely-resolvable calls.
    let mut may: HashMap<(usize, usize), BTreeSet<String>> = HashMap::new();
    for (fi, file) in files.iter().enumerate() {
        for (gi, f) in file.functions.iter().enumerate() {
            if f.in_test {
                may.insert((fi, gi), BTreeSet::new());
                continue;
            }
            let direct: BTreeSet<String> = f
                .events
                .iter()
                .filter_map(|e| match e {
                    Event::Acquire { receiver, .. } => Some(cfg.canonical(receiver).to_string()),
                    _ => None,
                })
                .collect();
            may.insert((fi, gi), direct);
        }
    }
    loop {
        let mut changed = false;
        for (fi, file) in files.iter().enumerate() {
            for (gi, f) in file.functions.iter().enumerate() {
                let mut add = BTreeSet::new();
                for ev in &f.events {
                    if let Event::Call { name, .. } = ev {
                        if let Some(callee) = resolve(name) {
                            if let Some(locks) = may.get(&callee) {
                                add.extend(locks.iter().cloned());
                            }
                        }
                    }
                }
                let mine = may.get_mut(&(fi, gi)).expect("indexed above");
                let before = mine.len();
                mine.extend(add);
                if mine.len() != before {
                    changed = true;
                }
            }
        }
        if !changed {
            break;
        }
    }

    // Collect edges.
    let mut edges: Vec<Edge> = Vec::new();
    let mut seen: BTreeSet<(String, String)> = BTreeSet::new();
    let mut push_edge = |edges: &mut Vec<Edge>, e: Edge| {
        if seen.insert((e.from.clone(), e.to.clone())) {
            edges.push(e);
        }
    };
    for file in files {
        for f in &file.functions {
            if f.in_test {
                continue;
            }
            for ev in &f.events {
                match ev {
                    Event::Acquire {
                        receiver,
                        line,
                        held,
                    } => {
                        let to = cfg.canonical(receiver).to_string();
                        for h in held {
                            push_edge(
                                &mut edges,
                                Edge {
                                    from: cfg.canonical(&h.receiver).to_string(),
                                    to: to.clone(),
                                    file: file.path.clone(),
                                    line: *line,
                                    via: None,
                                },
                            );
                        }
                    }
                    Event::Call { name, line, held } => {
                        if held.is_empty() {
                            continue;
                        }
                        let Some(callee) = resolve(name) else {
                            continue;
                        };
                        let Some(locks) = may.get(&callee) else {
                            continue;
                        };
                        for h in held {
                            let from = cfg.canonical(&h.receiver).to_string();
                            for to in locks {
                                push_edge(
                                    &mut edges,
                                    Edge {
                                        from: from.clone(),
                                        to: to.clone(),
                                        file: file.path.clone(),
                                        line: *line,
                                        via: Some(name.clone()),
                                    },
                                );
                            }
                        }
                    }
                    _ => {}
                }
            }
        }
    }

    // Order violations (and self-edges) against the declared order.
    let mut in_cycle_reported: BTreeSet<(String, String)> = BTreeSet::new();
    for e in &edges {
        let via = e
            .via
            .as_ref()
            .map(|v| format!(" (via call to `{v}`)"))
            .unwrap_or_default();
        if e.from == e.to {
            out.push(Finding {
                file: e.file.clone(),
                line: e.line,
                rule: RULE_LOCK_ORDER,
                message: format!(
                    "lock `{}` acquired while already held{via} — self-deadlock",
                    e.from
                ),
            });
            in_cycle_reported.insert((e.from.clone(), e.to.clone()));
            continue;
        }
        if let (Some(a), Some(b)) = (cfg.order_index(&e.from), cfg.order_index(&e.to)) {
            if a >= b {
                out.push(Finding {
                    file: e.file.clone(),
                    line: e.line,
                    rule: RULE_LOCK_ORDER,
                    message: format!(
                        "lock `{}` acquired while holding `{}`{via} — contradicts the declared \
                         order in lint/lock_order.toml (`{}` before `{}`)",
                        e.to, e.from, e.to, e.from
                    ),
                });
                in_cycle_reported.insert((e.from.clone(), e.to.clone()));
            }
        }
    }

    // Cycles among the remaining edges (covers undeclared locks and
    // cross-function composition). Edges already reported as order
    // contradictions are removed from the graph first — every cycle through
    // one of them is the same defect, already on the report.
    let cycle_edges: Vec<&Edge> = edges
        .iter()
        .filter(|e| !in_cycle_reported.contains(&(e.from.clone(), e.to.clone())))
        .collect();
    let mut adj: BTreeMap<&str, Vec<&Edge>> = BTreeMap::new();
    for e in &cycle_edges {
        adj.entry(e.from.as_str()).or_default().push(e);
    }
    let mut reported_cycles: BTreeSet<Vec<String>> = BTreeSet::new();
    for e in &cycle_edges {
        // Path e.to -> ... -> e.from closes a cycle through e.
        if let Some(path) = find_path(&adj, &e.to, &e.from) {
            let mut cycle: Vec<String> = path.iter().map(|s| s.to_string()).collect();
            cycle.push(e.to.clone());
            // Canonicalize: rotate so the smallest element leads.
            let n = cycle.len() - 1; // last repeats first conceptually
            let min_at = (0..n).min_by_key(|&i| &cycle[i]).unwrap_or(0);
            let canon: Vec<String> = (0..=n).map(|i| cycle[(min_at + i) % n].clone()).collect();
            if reported_cycles.insert(canon.clone()) {
                out.push(Finding {
                    file: e.file.clone(),
                    line: e.line,
                    rule: RULE_LOCK_ORDER,
                    message: format!(
                        "lock-order cycle: {} — acquiring `{}` while holding `{}` closes it",
                        canon.join(" -> "),
                        e.to,
                        e.from
                    ),
                });
            }
        }
    }
}

fn find_path<'a>(
    adj: &BTreeMap<&'a str, Vec<&'a Edge>>,
    from: &'a str,
    to: &str,
) -> Option<Vec<&'a str>> {
    let mut stack = vec![(from, vec![from])];
    let mut seen = BTreeSet::new();
    while let Some((node, path)) = stack.pop() {
        if node == to {
            return Some(path);
        }
        if !seen.insert(node) {
            continue;
        }
        if let Some(edges) = adj.get(node) {
            for e in edges {
                let mut p = path.clone();
                p.push(e.to.as_str());
                stack.push((e.to.as_str(), p));
            }
        }
    }
    None
}

//! `bolt-tool` — command-line inspection and maintenance for BoLT
//! databases on a real filesystem.
//!
//! ```text
//! bolt-tool <command> <db-dir> [args...] [--profile <name>] [--policy=<p>]
//!
//! commands:
//!   stat <db> [--json|--prometheus] one merged metrics snapshot (text,
//!        [--per-shard]              JSON, or Prometheus exposition); with
//!                                   --per-shard, open a ShardedDb and show
//!                                   the aggregate plus every shard
//!   stats <db>                      level shape + engine + IO counters
//!                                   (text alias of `stat`)
//!   trace [--json] [--validate F]   run the canonical micro workload
//!                                   (in-memory, needs no db-dir) and dump
//!                                   its event stream; with --validate,
//!                                   check every JSON line against schema F
//!   dump-manifest <db>              decode the live MANIFEST
//!   dump-tables <db>                logical SSTables by physical file
//!   scan <db> [start] [limit]       print entries in order
//!   get <db> <key>                  point lookup
//!   put <db> <key> <value>          insert
//!   delete <db> <key>               delete
//!   load <db> <records> [vlen]      bulk-load synthetic records
//!   compact <db>                    flush + compact until quiet
//!   verify <db>                     full integrity walk
//!   bench [--smoke] [--out FILE]    standing benchmark suites on a
//!         [--suite NAME]*           simulated device (needs no db-dir):
//!                                   trajectory (sharded scaling), policies
//!                                   (compaction write/read/space amp),
//!                                   value-separation (vlog write amp);
//!                                   full runs write BENCH_PR9.json and
//!                                   enforce the accumulated perf floors,
//!                                   --smoke checks the harness only
//!   backup create <db> <backup>     checkpoint the database into a new
//!                                   generation of an incremental backup
//!                                   (unchanged payloads are shared)
//!   backup restore <backup> <dest>  rebuild a database image from a
//!          [--gen N]                generation (latest by default), every
//!                                   byte CRC-verified, CURRENT landing last
//!   backup verify <backup>          check every generation's manifest and
//!                                   payload CRCs
//!   crash-sweep [points] [seed]     crash-point + EIO sweep (in-memory,
//!               [--policy=<p>]      needs no db-dir); --policy runs the
//!               [--sharded]         sweep under leveled (default),
//!               [--vlog]            size-tiered, or lazy-leveled victim
//!               [--checkpoint]      selection; with --sharded, sweep
//!                                   cross-shard 2PC commit windows; with
//!                                   --vlog, run under WAL-time value
//!                                   separation and force-cover every
//!                                   value-log op as a crash point; with
//!                                   --checkpoint, end the workload with an
//!                                   online checkpoint, force-cover its
//!                                   window, and check invariant C1
//!   lint [path] [--config FILE]     barrier-ordering/lock-discipline
//!        [--json] [--validate F]    static analysis (alias of bolt-lint);
//!                                   with --json, findings are JSON Lines,
//!                                   optionally validated against schema F
//!
//! --profile: leveldb | lvl64 | hyper | pebbles | rocks | bolt (default)
//!            | hyperbolt | rocksbolt
//! --policy:  leveled (default) | size-tiered | lazy-leveled — required to
//!            open a database whose MANIFEST pins a non-leveled policy
//! ```

use std::process::ExitCode;
use std::sync::Arc;

use bolt_env::{Env, RealEnv};

fn usage() -> ExitCode {
    eprintln!(
        "usage: bolt-tool <stat|stats|dump-manifest|dump-tables|scan|get|put|delete|load|compact|verify> <db-dir> [args...] [--profile <name>] [--policy=<p>]\n       bolt-tool stat <db-dir> [--json|--prometheus] [--per-shard]\n       bolt-tool backup <create <db-dir>|restore [--gen N]|verify> <backup-dir> [<dest-dir>]\n       bolt-tool bench [--smoke] [--out FILE] [--suite trajectory|policies|value-separation]*\n       bolt-tool trace [--json] [--validate SCHEMA]\n       bolt-tool crash-sweep [max-points] [seed] [--policy=<p>] [--sharded] [--vlog] [--checkpoint]\n       bolt-tool lint [path] [--config FILE] [--json] [--validate SCHEMA]"
    );
    ExitCode::from(2)
}

/// `bolt-tool bench [--smoke] [--out FILE] [--suite NAME]*` — run the
/// standing benchmark suites on a simulated device (no db-dir needed).
fn bench(args: &[String]) -> ExitCode {
    let mut cfg = bolt_tools::BenchArgs::default();
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--smoke" => cfg.smoke = true,
            "--out" => match it.next() {
                Some(p) => cfg.out = p.clone(),
                None => return usage(),
            },
            "--suite" => match it.next() {
                Some(s) => cfg.suites.push(s.clone()),
                None => return usage(),
            },
            _ => return usage(),
        }
    }
    match bolt_tools::run_bench(&cfg) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

/// Run the crash-point sweep on an in-memory filesystem (no db-dir needed).
/// With `--sharded`, sweep the cross-shard 2PC windows of a [`bolt_sharded::ShardedDb`]
/// instead of the single-engine workload.
fn crash_sweep(args: &[String]) -> ExitCode {
    let mut positional: Vec<&String> = Vec::new();
    let mut sharded = false;
    let mut vlog = false;
    let mut checkpoint = false;
    let mut policy = bolt_core::CompactionPolicyKind::Leveled;
    for arg in &args[1..] {
        if arg == "--sharded" {
            sharded = true;
        } else if arg == "--vlog" {
            vlog = true;
        } else if arg == "--checkpoint" {
            checkpoint = true;
        } else if let Some(name) = arg.strip_prefix("--policy=") {
            policy = match bolt_core::CompactionPolicyKind::parse(name) {
                Some(policy) => policy,
                None => {
                    eprintln!(
                        "error: unknown policy `{name}` (try: leveled, size-tiered, lazy-leveled)"
                    );
                    return ExitCode::from(2);
                }
            };
        } else {
            positional.push(arg);
        }
    }
    if sharded {
        if policy != bolt_core::CompactionPolicyKind::Leveled {
            eprintln!("error: --policy is not supported with --sharded");
            return ExitCode::from(2);
        }
        if vlog {
            eprintln!("error: --vlog is not supported with --sharded");
            return ExitCode::from(2);
        }
        if checkpoint {
            eprintln!("error: --checkpoint is not supported with --sharded");
            return ExitCode::from(2);
        }
        let mut cfg = bolt_tools::Sharded2pcConfig::default();
        if let Some(points) = positional.first().and_then(|s| s.parse().ok()) {
            cfg.max_crash_points = points;
        }
        if let Some(seed) = positional.get(1).and_then(|s| s.parse().ok()) {
            cfg.seed = seed;
        }
        return match bolt_tools::run_sharded_crash_sweep(&cfg) {
            Ok(outcome) => {
                print!("{}", bolt_tools::render_sharded_report(&outcome));
                if outcome.violations.is_empty() {
                    ExitCode::SUCCESS
                } else {
                    ExitCode::FAILURE
                }
            }
            Err(e) => {
                eprintln!("error: {e}");
                ExitCode::FAILURE
            }
        };
    }
    let mut cfg = bolt_tools::SweepConfig {
        policy,
        vlog,
        checkpoint,
        ..bolt_tools::SweepConfig::default()
    };
    if let Some(points) = positional.first().and_then(|s| s.parse().ok()) {
        cfg.max_crash_points = points;
    }
    if let Some(seed) = positional.get(1).and_then(|s| s.parse().ok()) {
        cfg.seed = seed;
    }
    match bolt_tools::run_crash_sweep(&cfg) {
        Ok(outcome) => {
            print!("{}", bolt_tools::render_report(&outcome));
            if outcome.violations.is_empty() {
                ExitCode::SUCCESS
            } else {
                ExitCode::FAILURE
            }
        }
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

/// `bolt-tool backup <create|restore|verify> ...` — incremental backups
/// built on online checkpoints. `create` opens the database (honouring
/// `--profile` / `--policy=`), checkpoints it into the backup's staging
/// area and commits a new generation; `restore` rebuilds a database image
/// from a generation with every byte CRC-verified; `verify` checks every
/// generation end to end.
fn backup(args: &[String], profile_name: &str) -> ExitCode {
    let mut positional: Vec<&String> = Vec::new();
    let mut policy = None;
    let mut generation: Option<u64> = None;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        if let Some(name) = arg.strip_prefix("--policy=") {
            policy = match bolt_core::CompactionPolicyKind::parse(name) {
                Some(policy) => Some(policy),
                None => {
                    eprintln!(
                        "error: unknown policy `{name}` (try: leveled, size-tiered, lazy-leveled)"
                    );
                    return ExitCode::from(2);
                }
            };
        } else if arg == "--gen" {
            generation = match it.next().and_then(|s| s.parse().ok()) {
                Some(n) => Some(n),
                None => return usage(),
            };
        } else {
            positional.push(arg);
        }
    }
    let env: Arc<dyn Env> = Arc::new(RealEnv::new("."));
    let result = match positional.as_slice() {
        [verb, db, backup_dir] if verb.as_str() == "create" => {
            let mut opts = match bolt_tools::profile(profile_name) {
                Ok(opts) => opts,
                Err(e) => {
                    eprintln!("error: {e}");
                    return ExitCode::from(2);
                }
            };
            if let Some(p) = policy {
                opts.compaction_policy = p;
            }
            bolt_core::Db::open(Arc::clone(&env), db, opts)
                .and_then(|db| {
                    let report = bolt_tools::backup_create(&env, &db, backup_dir);
                    db.close()?;
                    report
                })
                .map(|r| bolt_tools::render_backup_report("create", &r))
        }
        [verb, backup_dir, dest] if verb.as_str() == "restore" => {
            bolt_tools::backup_restore(&env, backup_dir, generation, dest)
                .map(|r| bolt_tools::render_backup_report("restore", &r))
        }
        [verb, backup_dir] if verb.as_str() == "verify" => {
            bolt_tools::backup_verify(&env, backup_dir)
                .map(|r| bolt_tools::render_backup_report("verify", &r))
        }
        _ => return usage(),
    };
    match result {
        Ok(output) => {
            print!("{output}");
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

/// `bolt-tool trace [--json] [--validate SCHEMA]` — run the canonical micro
/// workload on an in-memory filesystem and dump its event stream.
fn trace(args: &[String]) -> ExitCode {
    let mut json_lines = false;
    let mut schema_path: Option<std::path::PathBuf> = None;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--json" => json_lines = true,
            "--validate" => match it.next() {
                Some(p) => schema_path = Some(p.into()),
                None => return usage(),
            },
            _ => return usage(),
        }
    }
    if schema_path.is_some() && !json_lines {
        eprintln!("error: --validate requires --json");
        return ExitCode::from(2);
    }
    let output = match bolt_tools::trace(json_lines) {
        Ok(output) => output,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };
    print!("{output}");
    if let Some(path) = schema_path {
        let schema = match std::fs::read_to_string(&path) {
            Ok(schema) => schema,
            Err(e) => {
                eprintln!("error: reading {}: {e}", path.display());
                return ExitCode::FAILURE;
            }
        };
        match bolt_tools::validate_trace_lines(&output, &schema) {
            Ok(n) => eprintln!("trace: {n} events validated against {}", path.display()),
            Err(e) => {
                eprintln!("error: schema validation failed:\n{e}");
                return ExitCode::FAILURE;
            }
        }
    }
    ExitCode::SUCCESS
}

/// `bolt-tool lint [path] [--config FILE] [--json] [--validate SCHEMA]` —
/// alias of `bolt-lint check`; with `--validate`, the JSON findings stream
/// is additionally checked against the given schema (as `trace` does for
/// its event stream).
fn lint(args: &[String]) -> ExitCode {
    let mut root: Option<std::path::PathBuf> = None;
    let mut config: Option<std::path::PathBuf> = None;
    let mut json = false;
    let mut schema_path: Option<std::path::PathBuf> = None;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--config" => match it.next() {
                Some(p) => config = Some(p.into()),
                None => return usage(),
            },
            "--json" => json = true,
            "--validate" => match it.next() {
                Some(p) => schema_path = Some(p.into()),
                None => return usage(),
            },
            p if root.is_none() && !p.starts_with('-') => root = Some(p.into()),
            _ => return usage(),
        }
    }
    if schema_path.is_some() && !json {
        eprintln!("error: --validate requires --json");
        return ExitCode::from(2);
    }
    let root = root.unwrap_or_else(|| ".".into());
    let Some(schema_path) = schema_path else {
        return ExitCode::from(
            u8::try_from(bolt_lint::run_check(&root, config.as_deref(), json)).unwrap_or(2),
        );
    };
    let findings = match bolt_lint::check_root(&root, config.as_deref()) {
        Ok(findings) => findings,
        Err(e) => {
            eprintln!("bolt-lint: error: {e}");
            return ExitCode::from(2);
        }
    };
    let output = bolt_lint::findings_json_lines(&findings);
    print!("{output}");
    let schema = match std::fs::read_to_string(&schema_path) {
        Ok(schema) => schema,
        Err(e) => {
            eprintln!("error: reading {}: {e}", schema_path.display());
            return ExitCode::FAILURE;
        }
    };
    match bolt_tools::validate_json_lines(&output, &schema) {
        Ok(n) => eprintln!(
            "lint: {n} finding(s) validated against {}",
            schema_path.display()
        ),
        Err(e) => {
            eprintln!("error: schema validation failed:\n{e}");
            return ExitCode::FAILURE;
        }
    }
    let errors = findings
        .iter()
        .any(|f| f.severity == bolt_lint::Severity::Error);
    if errors {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}

fn main() -> ExitCode {
    let mut args: Vec<String> = std::env::args().skip(1).collect();

    // Extract --profile anywhere in the argument list.
    let mut profile_name = "bolt".to_string();
    if let Some(pos) = args.iter().position(|a| a == "--profile") {
        if pos + 1 >= args.len() {
            return usage();
        }
        profile_name = args.remove(pos + 1);
        args.remove(pos);
    }

    if args.first().map(String::as_str) == Some("bench") {
        return bench(&args[1..]);
    }
    if args.first().map(String::as_str) == Some("crash-sweep") {
        return crash_sweep(&args);
    }
    if args.first().map(String::as_str) == Some("backup") {
        return backup(&args[1..], &profile_name);
    }
    if args.first().map(String::as_str) == Some("lint") {
        return lint(&args[1..]);
    }
    if args.first().map(String::as_str) == Some("trace") {
        return trace(&args[1..]);
    }

    // Databases pin their compaction policy in the MANIFEST, so opening
    // one built under a tiered policy needs the matching flag
    // (crash-sweep above parses its own copy).
    let mut policy = None;
    if let Some(pos) = args.iter().position(|a| a.starts_with("--policy=")) {
        let name = args[pos]["--policy=".len()..].to_string();
        match bolt_core::CompactionPolicyKind::parse(&name) {
            Some(p) => policy = Some(p),
            None => {
                eprintln!("error: unknown compaction policy '{name}'");
                return ExitCode::from(2);
            }
        }
        args.remove(pos);
    }

    if args.len() < 2 {
        return usage();
    }
    let command = args[0].clone();
    let db = args[1].clone();

    let mut opts = match bolt_tools::profile(&profile_name) {
        Ok(opts) => opts,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::from(2);
        }
    };
    if let Some(p) = policy {
        opts.compaction_policy = p;
    }
    // The db path's parent is the env root; the db directory name is the
    // final component.
    let env: Arc<dyn Env> = Arc::new(RealEnv::new("."));

    let result = match command.as_str() {
        "stat" => {
            let mut format = bolt_tools::StatFormat::Text;
            let mut per_shard = false;
            for arg in &args[2..] {
                match arg.as_str() {
                    "--json" => format = bolt_tools::StatFormat::Json,
                    "--prometheus" => format = bolt_tools::StatFormat::Prometheus,
                    "--per-shard" => per_shard = true,
                    _ => return usage(),
                }
            }
            if per_shard {
                bolt_tools::stat_per_shard(&env, &db, opts, format).map(Some)
            } else {
                bolt_tools::stat(&env, &db, opts, format).map(Some)
            }
        }
        "stats" => bolt_tools::stats(&env, &db, opts).map(Some),
        "dump-manifest" => bolt_tools::dump_manifest(&env, &db).map(Some),
        "dump-tables" => bolt_tools::dump_tables(&env, &db, opts).map(Some),
        "scan" => {
            let start = args.get(2).cloned().unwrap_or_default();
            let limit = args.get(3).and_then(|s| s.parse().ok()).unwrap_or(100usize);
            bolt_tools::scan(&env, &db, opts, start.as_bytes(), limit).map(Some)
        }
        "get" => match args.get(2) {
            Some(key) => bolt_tools::get(&env, &db, opts, key.as_bytes()).map(|v| {
                Some(match v {
                    Some(value) => format!("{}\n", String::from_utf8_lossy(&value)),
                    None => "(not found)\n".to_string(),
                })
            }),
            None => return usage(),
        },
        "put" => match (args.get(2), args.get(3)) {
            (Some(k), Some(v)) => {
                bolt_tools::put(&env, &db, opts, k.as_bytes(), v.as_bytes()).map(|()| None)
            }
            _ => return usage(),
        },
        "delete" => match args.get(2) {
            Some(k) => bolt_tools::delete_key(&env, &db, opts, k.as_bytes()).map(|()| None),
            None => return usage(),
        },
        "load" => {
            let records = args.get(2).and_then(|s| s.parse().ok()).unwrap_or(10_000);
            let vlen = args.get(3).and_then(|s| s.parse().ok()).unwrap_or(256);
            bolt_tools::load(&env, &db, opts, records, vlen).map(Some)
        }
        "compact" => bolt_tools::compact(&env, &db, opts).map(Some),
        "verify" => bolt_tools::verify(&env, &db, opts).map(Some),
        _ => return usage(),
    };

    match result {
        Ok(Some(output)) => {
            print!("{output}");
            ExitCode::SUCCESS
        }
        Ok(None) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

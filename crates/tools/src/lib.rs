//! # bolt-tools
//!
//! Offline inspection and maintenance commands for BoLT databases — the
//! `leveldbutil` of this workspace. Each command is a library function
//! (testable against any [`Env`]) with a thin CLI binary (`bolt-tool`)
//! on top.
//!
//! | Command | What it does |
//! |---|---|
//! | [`stat`] | one merged [`MetricsSnapshot`] as text, JSON, or Prometheus |
//! | [`stats`] | level shape, engine counters, I/O counters (text alias) |
//! | [`trace`] | run a canonical micro workload and dump its event stream |
//! | [`dump_manifest`] | decode every version edit in the live MANIFEST |
//! | [`dump_tables`] | list every logical SSTable with its physical location |
//! | [`scan`] | print key/value pairs in order |
//! | [`get`] / [`put`] / [`delete_key`] | point operations |
//! | [`load`] | bulk-load N synthetic records |
//! | [`compact`] | flush + compact until quiet |
//! | [`verify`] | full integrity walk: checksums, run ordering, level invariants |
//! | [`run_bench`] | the standing benchmark suites (sharding, policies, value separation) |
//! | [`run_crash_sweep`] | deterministic crash-point + EIO sweep over a [`bolt_env::FaultEnv`] |
//! | [`run_sharded_crash_sweep`] | the same, crashing inside cross-shard 2PC commit windows |
//! | [`stat_per_shard`] | [`stat`] for a [`bolt_sharded::ShardedDb`]: aggregate + per-shard series |

#![warn(missing_docs)]

mod backup;
mod bench;
pub mod json;
mod sweep;
mod sweep2pc;

pub use backup::{
    backup_create, backup_restore, backup_verify, render_backup_report, BackupReport,
};
pub use bench::{run_bench, BenchArgs, BENCH_SCHEMA};
pub use sweep::{render_report, run_crash_sweep, SweepConfig, SweepCoverage, SweepOutcome};
pub use sweep2pc::{
    render_sharded_report, run_sharded_crash_sweep, Sharded2pcConfig, Sharded2pcOutcome,
};

use std::fmt::Write as _;
use std::sync::Arc;

use bolt_common::{Error, Result};
use bolt_core::{CompactionStyle, Db, MetricsSnapshot, Options};
use bolt_env::Env;
use bolt_table::comparator::Comparator;
use bolt_table::ikey::parse_internal_key;
use bolt_wal::LogReader;

/// Parse a profile name into [`Options`].
///
/// # Errors
///
/// Returns [`Error::InvalidArgument`] for unknown profile names.
pub fn profile(name: &str) -> Result<Options> {
    Ok(match name {
        "leveldb" => Options::leveldb(),
        "leveldb64" | "lvl64" => Options::leveldb_64mb(),
        "hyper" | "hyperleveldb" => Options::hyperleveldb(),
        "pebbles" | "pebblesdb" => Options::pebblesdb(),
        "rocks" | "rocksdb" => Options::rocksdb(),
        "bolt" => Options::bolt(),
        "hyperbolt" => Options::hyperbolt(),
        "rocksbolt" => Options::rocksbolt(),
        other => {
            return Err(Error::InvalidArgument(format!(
                "unknown profile `{other}` (try: leveldb, lvl64, hyper, pebbles, rocks, bolt, hyperbolt, rocksbolt)"
            )))
        }
    })
}

fn open(env: &Arc<dyn Env>, db: &str, opts: Options) -> Result<Db> {
    Db::open(Arc::clone(env), db, opts)
}

/// Output format for [`stat`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StatFormat {
    /// Human-readable summary.
    Text,
    /// The [`MetricsSnapshot`] JSON document.
    Json,
    /// Prometheus text exposition format.
    Prometheus,
}

/// Render one [`MetricsSnapshot`] as human-readable text. Every number
/// below comes from the same snapshot the JSON and Prometheus exporters
/// serialize, so the three formats can never disagree.
fn render_metrics_text(metrics: &MetricsSnapshot) -> String {
    let mut out = String::new();
    writeln!(
        out,
        "compaction policy: {}",
        if metrics.policy.is_empty() {
            "leveled"
        } else {
            metrics.policy
        }
    )
    .expect("write");
    writeln!(out, "levels (runs / tables / bytes):").expect("write");
    for (i, level) in metrics.levels.iter().enumerate() {
        if level.tables > 0 {
            writeln!(
                out,
                "  L{i}: {:>3} runs  {:>5} tables  {:>12} bytes",
                level.runs, level.tables, level.bytes
            )
            .expect("write");
        }
    }
    let s = &metrics.db;
    let io = &metrics.io;
    writeln!(out, "engine:").expect("write");
    writeln!(
        out,
        "  flushes {} | compactions {} | settled moves {} | trivial moves {} | seek compactions {}",
        s.flushes, s.compactions, s.settled_moves, s.trivial_moves, s.seek_compactions
    )
    .expect("write");
    writeln!(
        out,
        "  stalls {} ({} ms) | slowdowns {}",
        s.stalls,
        s.stall_nanos / 1_000_000,
        s.slowdowns
    )
    .expect("write");
    writeln!(
        out,
        "  write groups {} ({} batches, {:.2}/group) | WAL syncs {} ({} elided)",
        s.write_groups,
        s.group_batches,
        metrics.batches_per_group(),
        s.wal_syncs,
        s.wal_syncs_elided
    )
    .expect("write");
    writeln!(out, "  manifest re-cuts {}", metrics.manifest_recuts).expect("write");
    if s.range_deletes > 0 || s.checkpoints > 0 || metrics.range_tombstones_live > 0 {
        writeln!(
            out,
            "  range deletes {} ({} tombstones live) | checkpoints {}",
            s.range_deletes, metrics.range_tombstones_live, s.checkpoints
        )
        .expect("write");
    }
    if s.vlog_values_separated > 0 {
        writeln!(
            out,
            "  vlog: {} values separated ({} B) | {} resolves | {} B dead | {} segments retired",
            s.vlog_values_separated,
            s.vlog_bytes_written,
            s.vlog_resolves,
            s.vlog_dead_bytes,
            s.vlog_segments_retired
        )
        .expect("write");
    }
    writeln!(out, "io:").expect("write");
    writeln!(
        out,
        "  fsync {} | ordering barriers {} | written {} B | read {} B | holes punched {} ({} B)",
        io.fsync_calls,
        io.ordering_barriers,
        io.bytes_written,
        io.bytes_read,
        io.holes_punched,
        io.hole_bytes
    )
    .expect("write");
    writeln!(out, "barriers by cause:").expect("write");
    for (cause, count) in &metrics.barriers_by_cause {
        if *count > 0 {
            writeln!(out, "  {:<20} {count}", cause.as_str()).expect("write");
        }
    }
    writeln!(
        out,
        "derived: write amp {:.2} | barriers/compaction {:.2} | WAL syncs/batch {:.3}",
        metrics.write_amplification(),
        metrics.barriers_per_compaction(),
        metrics.wal_syncs_per_batch()
    )
    .expect("write");
    writeln!(
        out,
        "events: {} emitted, {} dropped (ring overflow)",
        metrics.events_emitted, metrics.events_dropped
    )
    .expect("write");
    out
}

/// Open the database and render its merged [`MetricsSnapshot`] in the
/// requested format. All three formats serialize the **same** snapshot.
///
/// # Errors
///
/// Returns open/recovery errors.
pub fn stat(env: &Arc<dyn Env>, db: &str, opts: Options, format: StatFormat) -> Result<String> {
    let db = open(env, db, opts)?;
    let metrics = db.metrics();
    db.close()?;
    Ok(match format {
        StatFormat::Text => render_metrics_text(&metrics),
        StatFormat::Json => {
            let mut s = metrics.to_json();
            s.push('\n');
            s
        }
        StatFormat::Prometheus => metrics.to_prometheus_text(),
    })
}

/// Render level shape + engine + I/O statistics (text alias of [`stat`]).
///
/// # Errors
///
/// Returns open/recovery errors.
pub fn stats(env: &Arc<dyn Env>, db: &str, opts: Options) -> Result<String> {
    stat(env, db, opts, StatFormat::Text)
}

/// `stat --per-shard`: open a sharded database (its `SHARDS` file pins the
/// router, so none needs to be supplied) and render the aggregate followed
/// by every shard's own snapshot. JSON and Prometheus output carry the
/// per-shard series under a `shard="i"` label.
///
/// # Errors
///
/// Returns [`Error::InvalidArgument`] when `db` holds no `SHARDS` file,
/// plus open/recovery errors.
pub fn stat_per_shard(
    env: &Arc<dyn Env>,
    db: &str,
    opts: Options,
    format: StatFormat,
) -> Result<String> {
    let shards_path = bolt_env::join_path(db, "SHARDS");
    if !env.file_exists(&shards_path) {
        return Err(Error::InvalidArgument(format!(
            "{db}: not a sharded database (no SHARDS file); use plain `stat`"
        )));
    }
    let file = env.new_random_access_file(&shards_path)?;
    let raw = file.read(0, file.len() as usize)?;
    let text =
        String::from_utf8(raw).map_err(|_| Error::Corruption("SHARDS file: not UTF-8".into()))?;
    let router = bolt_sharded::Router::decode(&text)?;
    let db = bolt_sharded::ShardedDb::open(Arc::clone(env), db, opts, router)?;
    let metrics = db.metrics();
    db.close()?;
    Ok(match format {
        StatFormat::Text => {
            let mut out = String::new();
            writeln!(out, "aggregate over {} shards:", metrics.per_shard.len()).expect("write");
            out.push_str(&render_metrics_text(&metrics.aggregate));
            for (i, shard) in metrics.per_shard.iter().enumerate() {
                writeln!(out, "\nshard {i}:").expect("write");
                out.push_str(&render_metrics_text(shard));
            }
            out
        }
        StatFormat::Json => {
            let mut s = metrics.to_json();
            s.push('\n');
            s
        }
        StatFormat::Prometheus => metrics.to_prometheus_text(),
    })
}

/// Run the canonical trace micro workload on an in-memory filesystem and
/// return `(event stream, final metrics)`: disjoint key ranges loaded in
/// rounds (so settled compaction finds zero-overlap victims), explicit
/// flushes, then compaction until quiet.
///
/// # Errors
///
/// Returns engine errors from the workload itself.
pub fn trace_workload() -> Result<(Vec<bolt_core::TraceEvent>, MetricsSnapshot)> {
    let fault = bolt_env::FaultEnv::over_mem();
    let env: Arc<dyn Env> = Arc::new(fault.clone());
    let mut opts = Options::bolt().scaled(1.0 / 256.0);
    // Separate the 64-byte values into tiny value-log segments so the trace
    // also carries vlog_rotate/vlog_gc/vlog_retire events and vlog_data
    // barriers (schema v3) — the overwritten rounds leave early segments
    // fully dead for compaction-driven GC to retire.
    opts.value_separation_threshold = Some(48);
    opts.vlog_segment_bytes = 16 << 10;
    let db = Db::open(Arc::clone(&env), "trace-db", opts)?;
    let mut events = Vec::new();
    for round in 0..8u32 {
        for i in 0..400u32 {
            let key = format!("r{:02}/key{i:05}", round % 4);
            if i % 100 == 0 {
                // A few synced writes so the trace shows WAL-commit barriers
                // (and the syncs the group-commit path elides).
                let mut batch = bolt_core::WriteBatch::new();
                batch.put(key.as_bytes(), &[b'v'; 64]);
                db.write_opt(batch, &bolt_core::WriteOptions { sync: Some(true) })?;
            } else {
                db.put(key.as_bytes(), &[b'v'; 64])?;
            }
        }
        if round == 5 {
            // Arm a one-shot MANIFEST-sync EIO: the next commit barrier
            // (this round's flush, or a concurrent compaction's) absorbs it
            // by re-cutting a fresh MANIFEST (O5), so the live trace always
            // carries a `manifest_recut` event with its cause-tagged
            // barriers — which CI then validates against the schema.
            fault.extend_plan(
                bolt_env::FaultPlan::parse("eio:sync:glob=MANIFEST-*:nth=0").expect("static plan"),
            );
        }
        db.flush()?;
        // Drain incrementally so the ring buffer cannot overflow mid-run.
        events.extend(db.events());
    }
    // Schema v4 events: a ranged tombstone straddling a resident prefix
    // (range_delete, then dropped by the compaction below) and an online
    // checkpoint (checkpoint_begin/checkpoint_end plus checkpoint-cause
    // barriers). The checkpoint comes after the final compaction so its
    // pinned version does not suppress the hole_punch events above.
    db.delete_range(b"r01/", b"r02/")?;
    db.flush()?;
    events.extend(db.events());
    db.compact_until_quiet()?;
    events.extend(db.events());
    db.checkpoint("trace-ckpt")?;
    events.extend(db.events());
    db.close()?;
    // Close issues the final WAL barrier; pick it up before snapshotting.
    events.extend(db.events());
    let metrics = db.metrics();
    Ok((events, metrics))
}

/// `bolt-tool trace`: run [`trace_workload`] and render the event stream,
/// one event per line — JSON lines with `--json`, aligned text otherwise.
///
/// # Errors
///
/// Returns engine errors from the workload.
pub fn trace(json_lines: bool) -> Result<String> {
    let (events, metrics) = trace_workload()?;
    let mut out = String::new();
    for event in &events {
        if json_lines {
            writeln!(out, "{}", event.to_json()).expect("write");
        } else {
            writeln!(
                out,
                "#{:<6} {:>9} us  {}",
                event.seq,
                event.micros,
                event.event.describe()
            )
            .expect("write");
        }
    }
    if !json_lines {
        writeln!(
            out,
            "({} events, {} dropped, {:.2} barriers/compaction)",
            metrics.events_emitted,
            metrics.events_dropped,
            metrics.barriers_per_compaction()
        )
        .expect("write");
    }
    Ok(out)
}

/// Validate `bolt-tool trace --json` output (one JSON object per line)
/// against a JSON schema document. Returns the number of validated lines.
///
/// # Errors
///
/// Returns [`Error::Corruption`] if the schema or any line fails to parse,
/// or [`Error::InvalidArgument`] listing every schema violation found.
pub fn validate_trace_lines(output: &str, schema_text: &str) -> Result<usize> {
    validate_json_lines(output, schema_text)
}

/// Validate any JSON Lines stream (one object per line, blank lines
/// skipped) against a JSON schema document — used for both the trace event
/// stream and `bolt-lint --json` findings. Returns the number of validated
/// lines.
///
/// # Errors
///
/// Returns [`Error::Corruption`] if the schema or any line fails to parse,
/// or [`Error::InvalidArgument`] listing every schema violation found.
pub fn validate_json_lines(output: &str, schema_text: &str) -> Result<usize> {
    let schema = json::parse(schema_text)?;
    let mut checked = 0usize;
    let mut violations = Vec::new();
    for (lineno, line) in output.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        let value = json::parse(line)
            .map_err(|e| Error::corruption(format!("line {}: {e}", lineno + 1)))?;
        for v in json::validate(&schema, &value) {
            violations.push(format!("line {}: {v}", lineno + 1));
        }
        checked += 1;
    }
    if violations.is_empty() {
        Ok(checked)
    } else {
        Err(Error::InvalidArgument(violations.join("\n")))
    }
}

/// Decode the live MANIFEST into human-readable version edits.
///
/// # Errors
///
/// Returns I/O or corruption errors.
pub fn dump_manifest(env: &Arc<dyn Env>, db: &str) -> Result<String> {
    let current = env.new_random_access_file(&bolt_env::join_path(db, "CURRENT"))?;
    let name = String::from_utf8(current.read(0, current.len() as usize)?)
        .map_err(|_| Error::corruption("CURRENT not utf-8"))?;
    let manifest_path = bolt_env::join_path(db, name.trim());
    let mut reader = LogReader::new(env.new_random_access_file(&manifest_path)?);
    let mut out = String::new();
    writeln!(out, "manifest: {}", name.trim()).expect("write");
    let mut index = 0usize;
    while let Some(record) = reader.read_record()? {
        let edit = bolt_core::version::VersionEdit::decode(&record)?;
        writeln!(out, "edit #{index}:").expect("write");
        if let Some(v) = edit.log_number {
            writeln!(out, "  log_number: {v}").expect("write");
        }
        if let Some(v) = edit.next_file_number {
            writeln!(out, "  next_file: {v}").expect("write");
        }
        if let Some(v) = edit.next_table_id {
            writeln!(out, "  next_table: {v}").expect("write");
        }
        if let Some(v) = edit.last_sequence {
            writeln!(out, "  last_sequence: {v}").expect("write");
        }
        if let Some(v) = edit.compaction_policy {
            writeln!(out, "  compaction_policy: {}", v.as_str()).expect("write");
        }
        for (level, id) in &edit.deleted_tables {
            writeln!(out, "  delete: L{level} table#{id}").expect("write");
        }
        for (segment, offset, len) in &edit.vlog_dead {
            writeln!(out, "  vlog_dead: segment {segment:06} @{offset}+{len}").expect("write");
        }
        for segment in &edit.vlog_deleted {
            writeln!(out, "  vlog_retire: segment {segment:06}").expect("write");
        }
        for (level, tag, meta) in &edit.added_tables {
            writeln!(
                out,
                "  add: L{level} run={tag} table#{} file={:06} @{}+{} entries={} [{}..{}]",
                meta.table_id,
                meta.file_number,
                meta.offset,
                meta.size,
                meta.num_entries,
                String::from_utf8_lossy(meta.smallest_user_key()),
                String::from_utf8_lossy(meta.largest_user_key()),
            )
            .expect("write");
        }
        index += 1;
    }
    Ok(out)
}

/// List every live logical SSTable grouped by physical file.
///
/// # Errors
///
/// Returns open/recovery errors.
pub fn dump_tables(env: &Arc<dyn Env>, db_name: &str, opts: Options) -> Result<String> {
    let db = open(env, db_name, opts)?;
    let version = db.current_version();
    let mut by_file: std::collections::BTreeMap<u64, Vec<String>> = Default::default();
    let mut logical = 0usize;
    for (level, tag, table) in version.all_tables() {
        logical += 1;
        by_file.entry(table.file_number).or_default().push(format!(
            "  L{level} run={tag} table#{} @{}+{} entries={} [{}..{}]",
            table.table_id,
            table.offset,
            table.size,
            table.num_entries,
            String::from_utf8_lossy(table.smallest_user_key()),
            String::from_utf8_lossy(table.largest_user_key()),
        ));
    }
    let mut out = String::new();
    writeln!(
        out,
        "{} logical SSTable(s) in {} physical file(s):",
        logical,
        by_file.len()
    )
    .expect("write");
    for (file, mut lines) in by_file {
        let physical = env
            .file_size(&bolt_env::join_path(db_name, &format!("{file:06}.sst")))
            .unwrap_or(0);
        writeln!(out, "{file:06}.sst ({physical} B):").expect("write");
        lines.sort();
        for line in lines {
            writeln!(out, "{line}").expect("write");
        }
    }
    db.close()?;
    Ok(out)
}

/// Print up to `limit` live entries starting at `start`.
///
/// # Errors
///
/// Returns open or read errors.
pub fn scan(
    env: &Arc<dyn Env>,
    db: &str,
    opts: Options,
    start: &[u8],
    limit: usize,
) -> Result<String> {
    let db = open(env, db, opts)?;
    let mut iter = db.iter()?;
    if start.is_empty() {
        iter.seek_to_first()?;
    } else {
        iter.seek(start)?;
    }
    let mut out = String::new();
    let mut n = 0usize;
    while iter.valid() && n < limit {
        writeln!(
            out,
            "{} => {}",
            String::from_utf8_lossy(iter.key()),
            String::from_utf8_lossy(iter.value())
        )
        .expect("write");
        n += 1;
        iter.next()?;
    }
    writeln!(out, "({n} entries)").expect("write");
    db.close()?;
    Ok(out)
}

/// Point lookup.
///
/// # Errors
///
/// Returns open or read errors.
pub fn get(env: &Arc<dyn Env>, db: &str, opts: Options, key: &[u8]) -> Result<Option<Vec<u8>>> {
    let db = open(env, db, opts)?;
    let value = db.get(key)?;
    db.close()?;
    Ok(value)
}

/// Insert one key.
///
/// # Errors
///
/// Returns open or write errors.
pub fn put(env: &Arc<dyn Env>, db: &str, opts: Options, key: &[u8], value: &[u8]) -> Result<()> {
    let db = open(env, db, opts)?;
    db.put(key, value)?;
    db.close()
}

/// Delete one key.
///
/// # Errors
///
/// Returns open or write errors.
pub fn delete_key(env: &Arc<dyn Env>, db: &str, opts: Options, key: &[u8]) -> Result<()> {
    let db = open(env, db, opts)?;
    db.delete(key)?;
    db.close()
}

/// Bulk-load `records` YCSB-style records of `value_len` bytes.
///
/// # Errors
///
/// Returns open or write errors.
pub fn load(
    env: &Arc<dyn Env>,
    db: &str,
    opts: Options,
    records: u64,
    value_len: usize,
) -> Result<String> {
    let db = Arc::new(open(env, db, opts)?);
    let cfg = bolt_ycsb::BenchConfig {
        record_count: records,
        op_count: 0,
        threads: 4,
        value_len,
        seed: 1,
    };
    let result = bolt_ycsb::load_db(&db, &cfg)?;
    db.flush()?;
    db.compact_until_quiet()?;
    let out = format!(
        "loaded {} records ({} B values) at {:.0} ops/s\n",
        records,
        value_len,
        result.throughput()
    );
    db.close()?;
    Ok(out)
}

/// Flush and compact until the tree is quiescent.
///
/// # Errors
///
/// Returns open or background errors.
pub fn compact(env: &Arc<dyn Env>, db: &str, opts: Options) -> Result<String> {
    let db = open(env, db, opts)?;
    db.flush()?;
    db.compact_until_quiet()?;
    let levels = db.level_info();
    db.close()?;
    Ok(format!("compacted; levels: {levels:?}\n"))
}

/// Integrity walk: open every live logical SSTable, iterate every entry
/// (verifying block checksums along the way), and check the structural
/// invariants — tables sorted and disjoint within each run, entries sorted
/// within each table, table metadata matching contents.
///
/// # Errors
///
/// Returns the first corruption found, or open errors.
pub fn verify(env: &Arc<dyn Env>, db_name: &str, opts: Options) -> Result<String> {
    let db = open(env, db_name, opts.clone())?;
    let (tables_checked, entries_checked) = verify_db(&db)?;
    db.close()?;
    Ok(format!(
        "ok: {tables_checked} logical SSTable(s), {entries_checked} entries verified\n"
    ))
}

/// The integrity walk behind [`verify`], reusable against an already-open
/// database (the crash-sweep harness runs it after every recovery). Returns
/// `(tables_checked, entries_checked)`.
///
/// # Errors
///
/// Returns the first corruption found, or read errors.
pub fn verify_db(db: &Db) -> Result<(usize, u64)> {
    let db_name = db.name().to_string();
    let version = db.current_version();
    let icmp = bolt_table::comparator::InternalKeyComparator::default();
    let ucmp = icmp.user_comparator();

    let mut tables_checked = 0usize;
    let mut entries_checked = 0u64;

    for (level, state) in version.levels.iter().enumerate() {
        for run in &state.runs {
            // Invariant: tables within a run are sorted and disjoint.
            for pair in run.tables.windows(2) {
                if !ucmp
                    .compare(pair[0].largest_user_key(), pair[1].smallest_user_key())
                    .is_lt()
                {
                    return Err(Error::corruption(format!(
                        "L{level} run {}: tables {} and {} overlap",
                        run.tag, pair[0].table_id, pair[1].table_id
                    )));
                }
            }
            for meta in &run.tables {
                let reader = db.table_cache().table(&meta.spec(&db_name))?;
                let mut iter = reader.iter();
                iter.seek_to_first()?;
                let mut count = 0u64;
                let mut prev: Option<Vec<u8>> = None;
                while iter.valid() {
                    let key = iter.key().to_vec();
                    parse_internal_key(&key)?;
                    if let Some(p) = &prev {
                        if !icmp.compare(p, &key).is_lt() {
                            return Err(Error::corruption(format!(
                                "table {} entries out of order",
                                meta.table_id
                            )));
                        }
                    }
                    if count == 0 && icmp.compare(&key, &meta.smallest).is_ne() {
                        return Err(Error::corruption(format!(
                            "table {} smallest key mismatch",
                            meta.table_id
                        )));
                    }
                    prev = Some(key);
                    count += 1;
                    iter.next()?;
                }
                if count != meta.num_entries {
                    return Err(Error::corruption(format!(
                        "table {} has {count} entries, MANIFEST says {}",
                        meta.table_id, meta.num_entries
                    )));
                }
                if let Some(last) = prev {
                    if icmp.compare(&last, &meta.largest).is_ne() {
                        return Err(Error::corruption(format!(
                            "table {} largest key mismatch",
                            meta.table_id
                        )));
                    }
                }
                tables_checked += 1;
                entries_checked += count;
            }
        }
    }
    Ok((tables_checked, entries_checked))
}

/// Which compaction style a profile uses (for display).
pub fn style_name(opts: &Options) -> &'static str {
    match opts.compaction_style {
        CompactionStyle::Leveled => "leveled",
        CompactionStyle::Fragmented => "fragmented",
        CompactionStyle::Bolt(_) => "bolt",
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bolt_env::MemEnv;

    fn setup() -> (Arc<dyn Env>, Options) {
        let env: Arc<dyn Env> = Arc::new(MemEnv::new());
        (env, Options::bolt().scaled(1.0 / 256.0))
    }

    fn seed_db(env: &Arc<dyn Env>, opts: &Options) {
        let db = Db::open(Arc::clone(env), "db", opts.clone()).unwrap();
        for i in 0..2000u32 {
            db.put(
                format!("key{i:05}").as_bytes(),
                format!("value{i}").as_bytes(),
            )
            .unwrap();
        }
        db.flush().unwrap();
        db.compact_until_quiet().unwrap();
        db.close().unwrap();
    }

    #[test]
    fn lint_json_findings_match_checked_in_schema() {
        // Non-vacuous: analyze a crafted bad source so the JSON stream
        // actually contains error and warn findings, then validate every
        // line against the schema CI uses.
        let cfg = bolt_lint::Config::parse(
            "[order]\nlocks = [\"a.first\", \"a.second\"]\n\
             [aliases]\nfirst = \"a.first\"\nsecond = \"a.second\"\n",
        )
        .unwrap();
        let src = r#"
fn bad(first: &Mutex<S>, second: &Mutex<T>, w: &mut W) {
    let s = second.lock();
    let f = first.lock();
    w.sync();
    drop(f);
    drop(s);
}
fn stale() {
    // bolt-lint: allow(unsynced-commit)
    let x = 1;
}
"#;
        let findings =
            bolt_lint::analyze_sources(&[("bad \"path\".rs".to_string(), src.to_string())], &cfg);
        assert!(
            findings
                .iter()
                .any(|f| f.severity == bolt_lint::Severity::Error),
            "crafted source must produce error findings: {findings:#?}"
        );
        assert!(
            findings
                .iter()
                .any(|f| f.severity == bolt_lint::Severity::Warn),
            "crafted source must produce a dead-allow warning: {findings:#?}"
        );
        let out = bolt_lint::findings_json_lines(&findings);
        let schema = std::fs::read_to_string(concat!(
            env!("CARGO_MANIFEST_DIR"),
            "/../../schemas/lint.schema.json"
        ))
        .unwrap();
        let checked = validate_json_lines(&out, &schema).unwrap();
        assert_eq!(checked, findings.len());

        // A line violating the schema must be rejected.
        let bad = "{\"file\":\"x.rs\",\"line\":0,\"rule\":\"no-such-rule\",\"severity\":\"error\",\"message\":\"m\"}";
        assert!(validate_json_lines(bad, &schema).is_err());
    }

    #[test]
    fn profile_parsing() {
        assert!(profile("bolt").is_ok());
        assert!(profile("rocksbolt").is_ok());
        assert!(profile("nope").is_err());
        assert_eq!(style_name(&profile("pebbles").unwrap()), "fragmented");
        assert_eq!(style_name(&profile("leveldb").unwrap()), "leveled");
        assert_eq!(style_name(&profile("bolt").unwrap()), "bolt");
    }

    #[test]
    fn stats_and_dumps_render() {
        let (env, opts) = setup();
        seed_db(&env, &opts);
        let s = stats(&env, "db", opts.clone()).unwrap();
        assert!(s.contains("levels"), "{s}");
        assert!(s.contains("fsync"), "{s}");
        let m = dump_manifest(&env, "db").unwrap();
        assert!(m.contains("add: L"), "{m}");
        let t = dump_tables(&env, "db", opts).unwrap();
        assert!(t.contains("logical SSTable(s)"), "{t}");
        assert!(t.contains(".sst"), "{t}");
    }

    #[test]
    fn stat_formats_come_from_one_snapshot() {
        let (env, opts) = setup();
        seed_db(&env, &opts);
        let text = stat(&env, "db", opts.clone(), StatFormat::Text).unwrap();
        assert!(text.contains("barriers by cause"), "{text}");
        assert!(text.contains("derived:"), "{text}");

        let json_out = stat(&env, "db", opts.clone(), StatFormat::Json).unwrap();
        let doc = json::parse(&json_out).unwrap();
        let entries = doc
            .get("metrics")
            .and_then(json::JsonValue::as_array)
            .unwrap();
        // Engine counters reset on reopen, but the env's I/O counters see the
        // recovery reads/syncs — assert on one of those.
        let fsyncs = entries
            .iter()
            .find(|m| {
                m.get("name").and_then(json::JsonValue::as_str) == Some("bolt_io_fsyncs_total")
            })
            .and_then(|m| m.get("value"))
            .and_then(json::JsonValue::as_f64)
            .unwrap();
        assert!(fsyncs >= 1.0, "{json_out}");

        let prom = stat(&env, "db", opts, StatFormat::Prometheus).unwrap();
        assert!(prom.contains("bolt_flushes_total"), "{prom}");
        assert!(
            prom.contains("bolt_barriers_total{cause=\"open_manifest\"}"),
            "{prom}"
        );
        assert!(prom.contains("bolt_manifest_recuts_total"), "{prom}");
        assert!(prom.contains("bolt_checkpoints_total"), "{prom}");
        assert!(prom.contains("bolt_range_tombstones_live"), "{prom}");
        assert!(text.contains("manifest re-cuts"), "{text}");
    }

    #[test]
    fn trace_renders_and_validates_against_checked_in_schema() {
        let out = trace(true).unwrap();
        assert!(out.contains("\"type\":\"flush_begin\""), "{out}");
        assert!(out.contains("\"type\":\"compaction_end\""), "{out}");
        assert!(out.contains("\"cause\":\"wal_commit\""), "{out}");
        // The workload arms a MANIFEST EIO mid-run, so the live stream
        // always carries the self-healing re-cut and its barrier cause.
        assert!(out.contains("\"type\":\"manifest_recut\""), "{out}");
        assert!(out.contains("\"cause\":\"manifest_recut\""), "{out}");
        // Schema v4 scenario events: the workload issues one delete_range
        // and one online checkpoint.
        assert!(out.contains("\"type\":\"range_delete\""), "{out}");
        assert!(out.contains("\"type\":\"checkpoint_begin\""), "{out}");
        assert!(out.contains("\"type\":\"checkpoint_end\""), "{out}");
        assert!(out.contains("\"cause\":\"checkpoint\""), "{out}");
        let schema = std::fs::read_to_string(concat!(
            env!("CARGO_MANIFEST_DIR"),
            "/../../schemas/trace.schema.json"
        ))
        .unwrap();
        let checked = validate_trace_lines(&out, &schema).unwrap();
        assert!(checked > 50, "only {checked} events traced");

        // A line violating the schema must be rejected.
        let bad = "{\"seq\":0,\"us\":1,\"type\":\"no_such_event\"}";
        assert!(validate_trace_lines(bad, &schema).is_err());

        let human = trace(false).unwrap();
        assert!(human.contains("barriers/compaction"), "{human}");
        assert!(human.contains("MANIFEST commit"), "{human}");
        assert!(human.contains("MANIFEST re-cut"), "{human}");
    }

    #[test]
    fn point_ops_and_scan() {
        let (env, opts) = setup();
        put(&env, "db", opts.clone(), b"alpha", b"1").unwrap();
        put(&env, "db", opts.clone(), b"beta", b"2").unwrap();
        assert_eq!(
            get(&env, "db", opts.clone(), b"alpha").unwrap(),
            Some(b"1".to_vec())
        );
        delete_key(&env, "db", opts.clone(), b"alpha").unwrap();
        assert_eq!(get(&env, "db", opts.clone(), b"alpha").unwrap(), None);
        let out = scan(&env, "db", opts, b"", 10).unwrap();
        assert!(out.contains("beta => 2"), "{out}");
        assert!(out.contains("(1 entries)"), "{out}");
    }

    #[test]
    fn load_then_verify() {
        let (env, opts) = setup();
        let out = load(&env, "db", opts.clone(), 1500, 64).unwrap();
        assert!(out.contains("loaded 1500 records"), "{out}");
        let out = verify(&env, "db", opts).unwrap();
        assert!(out.starts_with("ok:"), "{out}");
    }

    #[test]
    fn verify_detects_corruption() {
        let (env, opts) = setup();
        seed_db(&env, &opts);
        // Find a live table file and flip one byte in the middle.
        let db = Db::open(Arc::clone(&env), "db", opts.clone()).unwrap();
        let version = db.current_version();
        let (_, _, table) = version.all_tables().next().expect("a table");
        let path = format!("db/{:06}.sst", table.file_number);
        let offset = table.offset + table.size / 2;
        db.close().unwrap();

        let r = env.new_random_access_file(&path).unwrap();
        let mut bytes = r.read(0, r.len() as usize).unwrap();
        bytes[offset as usize] ^= 0xff;
        let mut f = env.new_writable_file(&path).unwrap();
        f.append(&bytes).unwrap();
        f.sync().unwrap();
        drop(f);

        let err = verify(&env, "db", opts).unwrap_err();
        assert!(err.is_corruption(), "got {err}");
    }

    #[test]
    fn compact_reports_levels() {
        let (env, opts) = setup();
        seed_db(&env, &opts);
        let out = compact(&env, "db", opts).unwrap();
        assert!(out.contains("compacted"), "{out}");
    }
}

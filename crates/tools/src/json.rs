//! A dependency-free JSON parser and a subset JSON-Schema validator.
//!
//! The workspace is offline (no serde); `bolt-tool trace --validate` needs
//! just enough JSON machinery to parse its own exporter output and check it
//! against the checked-in `schemas/trace.schema.json`. Supported schema
//! keywords: `type`, `properties`, `required`, `additionalProperties`
//! (boolean form), `items`, `enum`, `minimum`.

use std::collections::BTreeMap;

use bolt_common::{Error, Result};

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum JsonValue {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any JSON number (held as f64; integers up to 2^53 are exact).
    Number(f64),
    /// A string.
    String(String),
    /// An array.
    Array(Vec<JsonValue>),
    /// An object (keys sorted for deterministic display).
    Object(BTreeMap<String, JsonValue>),
}

impl JsonValue {
    /// The member `key` of an object, if this is an object that has it.
    pub fn get(&self, key: &str) -> Option<&JsonValue> {
        match self {
            JsonValue::Object(map) => map.get(key),
            _ => None,
        }
    }

    /// The string contents, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsonValue::String(s) => Some(s),
            _ => None,
        }
    }

    /// The number, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            JsonValue::Number(n) => Some(*n),
            _ => None,
        }
    }

    /// The elements, if this is an array.
    pub fn as_array(&self) -> Option<&[JsonValue]> {
        match self {
            JsonValue::Array(items) => Some(items),
            _ => None,
        }
    }

    /// JSON type name used by schema `type` matching.
    fn type_name(&self) -> &'static str {
        match self {
            JsonValue::Null => "null",
            JsonValue::Bool(_) => "boolean",
            JsonValue::Number(_) => "number",
            JsonValue::String(_) => "string",
            JsonValue::Array(_) => "array",
            JsonValue::Object(_) => "object",
        }
    }
}

/// Parse one JSON document (trailing whitespace allowed, nothing else).
///
/// # Errors
///
/// Returns [`Error::Corruption`] describing the first syntax error.
pub fn parse(input: &str) -> Result<JsonValue> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let value = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error::corruption(format!(
            "trailing data at byte {}",
            p.pos
        )));
    }
    Ok(value)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while matches!(self.bytes.get(self.pos), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<()> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::corruption(format!(
                "expected `{}` at byte {}",
                b as char, self.pos
            )))
        }
    }

    fn eat_literal(&mut self, lit: &str) -> bool {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            true
        } else {
            false
        }
    }

    fn value(&mut self) -> Result<JsonValue> {
        self.skip_ws();
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(JsonValue::String(self.string()?)),
            Some(b't') if self.eat_literal("true") => Ok(JsonValue::Bool(true)),
            Some(b'f') if self.eat_literal("false") => Ok(JsonValue::Bool(false)),
            Some(b'n') if self.eat_literal("null") => Ok(JsonValue::Null),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            _ => Err(Error::corruption(format!(
                "unexpected input at byte {}",
                self.pos
            ))),
        }
    }

    fn object(&mut self) -> Result<JsonValue> {
        self.expect(b'{')?;
        let mut map = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(JsonValue::Object(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            let value = self.value()?;
            map.insert(key, value);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(JsonValue::Object(map));
                }
                _ => {
                    return Err(Error::corruption(format!(
                        "expected `,` or `}}` at byte {}",
                        self.pos
                    )))
                }
            }
        }
    }

    fn array(&mut self) -> Result<JsonValue> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(JsonValue::Array(items));
        }
        loop {
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(JsonValue::Array(items));
                }
                _ => {
                    return Err(Error::corruption(format!(
                        "expected `,` or `]` at byte {}",
                        self.pos
                    )))
                }
            }
        }
    }

    fn string(&mut self) -> Result<String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(Error::corruption("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b't') => out.push('\t'),
                        Some(b'r') => out.push('\r'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .and_then(|h| u32::from_str_radix(h, 16).ok())
                                .ok_or_else(|| Error::corruption("bad \\u escape"))?;
                            // Surrogate pairs are not needed for our own
                            // exporter output; reject rather than mangle.
                            let c = char::from_u32(hex)
                                .ok_or_else(|| Error::corruption("bad \\u escape"))?;
                            out.push(c);
                            self.pos += 4;
                        }
                        _ => return Err(Error::corruption("bad escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (input came from &str, so
                    // boundaries are valid).
                    let rest = &self.bytes[self.pos..];
                    let s = std::str::from_utf8(rest)
                        .map_err(|_| Error::corruption("invalid utf-8"))?;
                    let c = s
                        .chars()
                        .next()
                        .ok_or_else(|| Error::corruption("unterminated string"))?;
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<JsonValue> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::corruption("invalid number"))?;
        text.parse::<f64>()
            .map(JsonValue::Number)
            .map_err(|_| Error::corruption(format!("invalid number `{text}`")))
    }
}

/// Validate `value` against the schema subset, collecting every violation
/// as a `path: message` line. An empty result means the document conforms.
pub fn validate(schema: &JsonValue, value: &JsonValue) -> Vec<String> {
    let mut errors = Vec::new();
    validate_at(schema, value, "$", &mut errors);
    errors
}

fn validate_at(schema: &JsonValue, value: &JsonValue, path: &str, errors: &mut Vec<String>) {
    // `type`: a string or an array of alternatives. Schema `integer` is a
    // number with no fractional part.
    if let Some(ty) = schema.get("type") {
        let allowed: Vec<&str> = match ty {
            JsonValue::String(s) => vec![s.as_str()],
            JsonValue::Array(items) => items.iter().filter_map(JsonValue::as_str).collect(),
            _ => Vec::new(),
        };
        let actual = value.type_name();
        let matches = allowed.iter().any(|t| {
            *t == actual
                || (*t == "integer" && matches!(value, JsonValue::Number(n) if n.fract() == 0.0))
        });
        if !allowed.is_empty() && !matches {
            errors.push(format!("{path}: expected type {allowed:?}, got {actual}"));
            return; // structural keywords below assume the right type
        }
    }

    if let Some(options) = schema.get("enum").and_then(JsonValue::as_array) {
        if !options.contains(value) {
            errors.push(format!("{path}: value not in enum"));
        }
    }

    if let Some(min) = schema.get("minimum").and_then(JsonValue::as_f64) {
        if let Some(n) = value.as_f64() {
            if n < min {
                errors.push(format!("{path}: {n} below minimum {min}"));
            }
        }
    }

    if let JsonValue::Object(members) = value {
        if let Some(required) = schema.get("required").and_then(JsonValue::as_array) {
            for name in required.iter().filter_map(JsonValue::as_str) {
                if !members.contains_key(name) {
                    errors.push(format!("{path}: missing required member `{name}`"));
                }
            }
        }
        let properties = schema.get("properties");
        for (name, member) in members {
            let member_path = format!("{path}.{name}");
            match properties.and_then(|p| p.get(name)) {
                Some(sub) => validate_at(sub, member, &member_path, errors),
                None => {
                    if schema.get("additionalProperties") == Some(&JsonValue::Bool(false)) {
                        errors.push(format!("{member_path}: unexpected member"));
                    }
                }
            }
        }
    }

    if let JsonValue::Array(items) = value {
        if let Some(item_schema) = schema.get("items") {
            for (i, item) in items.iter().enumerate() {
                validate_at(item_schema, item, &format!("{path}[{i}]"), errors);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_nested_documents() {
        let v =
            parse(r#"{"a": [1, 2.5, -3e2], "b": {"c": "x\ny"}, "d": null, "e": true}"#).unwrap();
        assert_eq!(v.get("a").unwrap().as_array().unwrap().len(), 3);
        assert_eq!(
            v.get("a").unwrap().as_array().unwrap()[2].as_f64(),
            Some(-300.0)
        );
        assert_eq!(v.get("b").unwrap().get("c").unwrap().as_str(), Some("x\ny"));
        assert_eq!(v.get("d"), Some(&JsonValue::Null));
        assert_eq!(v.get("e"), Some(&JsonValue::Bool(true)));
    }

    #[test]
    fn rejects_malformed_input() {
        assert!(parse("{").is_err());
        assert!(parse(r#"{"a": }"#).is_err());
        assert!(parse("[1, 2,]").is_err());
        assert!(parse("{} extra").is_err());
        assert!(parse(r#""unterminated"#).is_err());
    }

    #[test]
    fn validates_types_required_and_enums() {
        let schema = parse(
            r#"{
                "type": "object",
                "required": ["kind", "n"],
                "properties": {
                    "kind": {"type": "string", "enum": ["a", "b"]},
                    "n": {"type": "integer", "minimum": 0},
                    "tags": {"type": "array", "items": {"type": "string"}}
                }
            }"#,
        )
        .unwrap();
        let good = parse(r#"{"kind": "a", "n": 3, "tags": ["x"]}"#).unwrap();
        assert!(validate(&schema, &good).is_empty());

        let bad = parse(r#"{"kind": "c", "n": -1, "tags": [7]}"#).unwrap();
        let errors = validate(&schema, &bad);
        assert_eq!(errors.len(), 3, "{errors:?}");
        assert!(errors.iter().any(|e| e.contains("enum")));
        assert!(errors.iter().any(|e| e.contains("minimum")));
        assert!(errors.iter().any(|e| e.contains("tags[0]")));

        let missing = parse(r#"{"kind": "a"}"#).unwrap();
        let errors = validate(&schema, &missing);
        assert!(errors.iter().any(|e| e.contains("missing required")));
    }

    #[test]
    fn integer_rejects_fractions_and_additional_properties_close() {
        let schema = parse(
            r#"{"type": "object", "additionalProperties": false,
                "properties": {"n": {"type": "integer"}}}"#,
        )
        .unwrap();
        let frac = parse(r#"{"n": 1.5}"#).unwrap();
        assert!(!validate(&schema, &frac).is_empty());
        let extra = parse(r#"{"n": 1, "z": 2}"#).unwrap();
        assert!(validate(&schema, &extra)
            .iter()
            .any(|e| e.contains("unexpected member")));
    }
}

//! `bolt-tool bench` — the standing benchmark runner.
//!
//! Folds the former one-off PR benches (`bench_trajectory`,
//! `bench_policies`) and the value-separation suite into one subcommand
//! with a stable result schema, so every PR appends to the same
//! measurement surface instead of minting a new binary:
//!
//! * **trajectory** — sharded vs. single-engine write scaling on a
//!   bandwidth-bound simulated SSD (1 shard vs. 4 shards, YCSB Load/A/C).
//! * **policies** — write/read/space amplification per compaction policy
//!   (leveled, size-tiered, lazy-leveled) over the full YCSB suite.
//! * **value-separation** — YCSB Load write amplification and throughput
//!   at 4/16/64 KiB values with WAL-time key-value separation off vs. on.
//!
//! `--smoke` runs every suite at toy scale on a nearly-free device to
//! exercise the harness in CI; results are printed but not recorded and
//! the perf floors are not asserted (a toy key space says nothing about
//! amplification). A full run writes `BENCH_PR9.json` and enforces the
//! accumulated acceptance floors:
//!
//! * trajectory: 4-shard Load throughput ≥ 2.5× the single engine (PR 6),
//! * policies: lazy-leveled cumulative write amp below leveled's (PR 7),
//! * value-separation: 16 KiB-value Load write amp ≥ 2× lower with
//!   separation on than off (PR 9).

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use bolt_bench::{bench_device, CAPACITY_SCALE};
use bolt_common::{Error, Result};
use bolt_core::{CompactionPolicyKind, Db, Options};
use bolt_env::{DeviceModel, Env, SimEnv};
use bolt_sharded::{Router, ShardedDb};
use bolt_ycsb::{load_db, run_workload, BenchConfig, KvTarget, RunResult, Workload};

/// Stable schema version of the emitted JSON.
pub const BENCH_SCHEMA: u32 = 1;

/// Parsed `bolt-tool bench` arguments.
#[derive(Debug, Clone)]
pub struct BenchArgs {
    /// Toy scale, nearly-free device, no file output, no perf floors.
    pub smoke: bool,
    /// Output path for the full-run JSON.
    pub out: String,
    /// Suites to run (empty = all).
    pub suites: Vec<String>,
}

impl Default for BenchArgs {
    fn default() -> Self {
        BenchArgs {
            smoke: false,
            out: "BENCH_PR9.json".to_string(),
            suites: Vec::new(),
        }
    }
}

/// A nearly-free device so `--smoke` exercises every code path in
/// milliseconds.
fn smoke_device() -> DeviceModel {
    DeviceModel {
        write_bandwidth: 256 * 1024 * 1024,
        read_bandwidth: 256 * 1024 * 1024,
        read_base_latency: Duration::ZERO,
        barrier_latency: Duration::from_micros(10),
        time_scale: 1.0,
    }
}

/// The write-bandwidth-bound device of the trajectory suite: 2 MB/s
/// sequential writes and a 0.5 ms barrier make a synced group
/// queue-drain-bound, so aggregate throughput tracks aggregate device
/// bandwidth.
fn trajectory_device() -> DeviceModel {
    DeviceModel {
        write_bandwidth: 2 * 1024 * 1024,
        read_bandwidth: 48 * 1024 * 1024,
        read_base_latency: Duration::from_micros(30),
        barrier_latency: Duration::from_micros(500),
        time_scale: 1.0,
    }
}

// ---------------------------------------------------------------------
// trajectory suite
// ---------------------------------------------------------------------

struct TrajectoryRow {
    workload: &'static str,
    shards: usize,
    ops: u64,
    ops_per_sec: f64,
    p50_us: u64,
    p99_us: u64,
    p999_us: u64,
}

struct TrajectoryResult {
    rows: Vec<TrajectoryRow>,
    speedups: Vec<(&'static str, f64)>,
}

const TRAJECTORY_THREADS: usize = 8;
const TRAJECTORY_SHARDS: usize = 4;

fn trajectory_row(workload: &'static str, shards: usize, r: &RunResult) -> TrajectoryRow {
    TrajectoryRow {
        workload,
        shards,
        ops: r.ops,
        ops_per_sec: r.throughput(),
        p50_us: r.percentile(50.0) / 1_000,
        p99_us: r.percentile(99.0) / 1_000,
        p999_us: r.percentile(99.9) / 1_000,
    }
}

fn trajectory_phases<T: KvTarget>(
    db: &Arc<T>,
    shards: usize,
    cfg: &BenchConfig,
) -> Result<Vec<TrajectoryRow>> {
    let mut rows = Vec::new();
    rows.push(trajectory_row("Load", shards, &load_db(db, cfg)?));
    let cursor = Arc::new(AtomicU64::new(cfg.record_count));
    rows.push(trajectory_row(
        "A",
        shards,
        &run_workload(db, &Workload::a(), cfg, &cursor)?,
    ));
    rows.push(trajectory_row(
        "C",
        shards,
        &run_workload(db, &Workload::c(), cfg, &cursor)?,
    ));
    Ok(rows)
}

fn trajectory_suite(smoke: bool) -> Result<TrajectoryResult> {
    let device = if smoke {
        smoke_device()
    } else {
        trajectory_device()
    };
    let opts = || {
        let mut opts = Options::bolt().scaled(CAPACITY_SCALE);
        // The paper's durable-write regime: the WAL device gates
        // throughput, which is what sharding parallelizes.
        opts.sync_wal = true;
        opts
    };
    let cfg = BenchConfig {
        record_count: if smoke { 400 } else { 4_000 },
        op_count: if smoke { 400 } else { 4_000 },
        threads: TRAJECTORY_THREADS,
        value_len: 1024,
        seed: 0x5eed,
    };

    let env: Arc<dyn Env> = Arc::new(SimEnv::new(device));
    let db = Arc::new(Db::open(Arc::clone(&env), "bench-db", opts())?);
    let mut rows = trajectory_phases(&db, 1, &cfg)?;
    db.close()?;

    let envs: Vec<Arc<dyn Env>> = (0..TRAJECTORY_SHARDS)
        .map(|_| Arc::new(SimEnv::new(device)) as Arc<dyn Env>)
        .collect();
    let sharded = Arc::new(ShardedDb::open_with_envs(
        envs,
        "bench-db",
        opts(),
        Router::hash(TRAJECTORY_SHARDS)?,
    )?);
    rows.extend(trajectory_phases(&sharded, TRAJECTORY_SHARDS, &cfg)?);
    sharded.close()?;

    let mut speedups = Vec::new();
    for workload in ["Load", "A", "C"] {
        let single = rows
            .iter()
            .find(|r| r.workload == workload && r.shards == 1)
            .map_or(0.0, |r| r.ops_per_sec);
        let multi = rows
            .iter()
            .find(|r| r.workload == workload && r.shards == TRAJECTORY_SHARDS)
            .map_or(0.0, |r| r.ops_per_sec);
        speedups.push((workload, multi / single.max(1e-9)));
    }
    Ok(TrajectoryResult { rows, speedups })
}

// ---------------------------------------------------------------------
// policies suite
// ---------------------------------------------------------------------

struct PolicyRow {
    policy: &'static str,
    workload: &'static str,
    ops: u64,
    ops_per_sec: f64,
    p50_us: u64,
    p99_us: u64,
    write_amp: f64,
    read_amp: f64,
}

struct PolicySummary {
    policy: &'static str,
    write_amp: f64,
    read_amp_c: f64,
    space_amp: f64,
    barriers_per_compaction: f64,
}

struct PoliciesResult {
    rows: Vec<PolicyRow>,
    summary: Vec<PolicySummary>,
}

const POLICY_THREADS: usize = 4;

fn policy_leg(
    db: &Arc<Db>,
    policy: &'static str,
    workload: &'static str,
    result: &RunResult,
    before: &bolt_core::MetricsSnapshot,
    value_len: usize,
) -> PolicyRow {
    let after = db.metrics();
    let wrote = after.io.bytes_written - before.io.bytes_written;
    let accepted = after.db.user_bytes_written - before.db.user_bytes_written;
    let read = after.io.bytes_read - before.io.bytes_read;
    let requested = result.ops * value_len as u64;
    PolicyRow {
        policy,
        workload,
        ops: result.ops,
        ops_per_sec: result.throughput(),
        p50_us: result.percentile(50.0) / 1_000,
        p99_us: result.percentile(99.0) / 1_000,
        write_amp: if accepted == 0 {
            0.0
        } else {
            wrote as f64 / accepted as f64
        },
        read_amp: if requested == 0 {
            0.0
        } else {
            read as f64 / requested as f64
        },
    }
}

fn run_policy(
    policy: CompactionPolicyKind,
    device: DeviceModel,
    cfg: &BenchConfig,
) -> Result<(Vec<PolicyRow>, PolicySummary)> {
    let name = policy.as_str();
    let env: Arc<dyn Env> = Arc::new(SimEnv::new(device));
    let opts = {
        let mut opts = Options::bolt().scaled(CAPACITY_SCALE);
        opts.compaction_policy = policy;
        opts
    };
    let db = Arc::new(Db::open(Arc::clone(&env), "bench-db", opts)?);

    let mut rows = Vec::new();
    let before = db.metrics();
    let load = load_db(&db, cfg)?;
    rows.push(policy_leg(&db, name, "Load", &load, &before, cfg.value_len));

    let cursor = Arc::new(AtomicU64::new(cfg.record_count));
    let mut read_amp_c = 0.0;
    for workload in [
        Workload::a(),
        Workload::b(),
        Workload::c(),
        Workload::d(),
        Workload::e(),
        Workload::f(),
    ] {
        let before = db.metrics();
        let result = run_workload(&db, &workload, cfg, &cursor)?;
        let row = policy_leg(&db, name, workload.name, &result, &before, cfg.value_len);
        if workload.name == "C" {
            read_amp_c = row.read_amp;
        }
        rows.push(row);
    }

    // Settle so the space measurement sees committed tables, not an
    // in-flight memtable.
    db.flush()?;
    let metrics = db.metrics();
    let live_bytes: u64 = metrics.levels.iter().map(|l| l.bytes).sum();
    let loaded = cursor.load(Ordering::Relaxed) * cfg.value_len as u64;
    let summary = PolicySummary {
        policy: name,
        write_amp: metrics.write_amplification(),
        read_amp_c,
        space_amp: if loaded == 0 {
            0.0
        } else {
            live_bytes as f64 / loaded as f64
        },
        barriers_per_compaction: metrics.barriers_per_compaction(),
    };
    db.close()?;
    Ok((rows, summary))
}

fn policies_suite(smoke: bool) -> Result<PoliciesResult> {
    let device = if smoke {
        smoke_device()
    } else {
        bench_device()
    };
    let cfg = BenchConfig {
        record_count: if smoke { 400 } else { 8_000 },
        op_count: if smoke { 400 } else { 4_000 },
        threads: POLICY_THREADS,
        value_len: 1024,
        seed: 0x5eed,
    };
    let mut rows = Vec::new();
    let mut summary = Vec::new();
    for policy in [
        CompactionPolicyKind::Leveled,
        CompactionPolicyKind::SizeTiered,
        CompactionPolicyKind::LazyLeveled,
    ] {
        let (r, s) = run_policy(policy, device, &cfg)?;
        rows.extend(r);
        summary.push(s);
    }
    Ok(PoliciesResult { rows, summary })
}

// ---------------------------------------------------------------------
// value-separation suite
// ---------------------------------------------------------------------

struct VsepRow {
    value_len: usize,
    separated: bool,
    ops: u64,
    ops_per_sec: f64,
    p50_us: u64,
    p99_us: u64,
    p999_us: u64,
    write_amp: f64,
}

struct VsepResult {
    rows: Vec<VsepRow>,
    /// Per value size: `(value_len, write_amp_off / write_amp_on)`.
    reductions: Vec<(usize, f64)>,
}

/// Values above this go to the value log in the separated configuration.
const VSEP_THRESHOLD: u64 = 1024;

fn vsep_suite(smoke: bool) -> Result<VsepResult> {
    let sizes: &[usize] = if smoke {
        &[4096]
    } else {
        &[4096, 16384, 65536]
    };
    let total_bytes: u64 = if smoke { 1 << 20 } else { 16 << 20 };
    let mut rows = Vec::new();
    for &value_len in sizes {
        for separated in [false, true] {
            let device = if smoke {
                smoke_device()
            } else {
                bench_device()
            };
            let env: Arc<dyn Env> = Arc::new(SimEnv::new(device));
            let mut opts = Options::bolt().scaled(CAPACITY_SCALE);
            if separated {
                opts.value_separation_threshold = Some(VSEP_THRESHOLD);
            }
            let db = Arc::new(Db::open(Arc::clone(&env), "bench-db", opts)?);
            let cfg = BenchConfig {
                record_count: (total_bytes / value_len as u64).max(64),
                op_count: 0,
                threads: 4,
                value_len,
                seed: 0x5eed,
            };
            let before = db.metrics();
            let load = load_db(&db, &cfg)?;
            // Settle the tail so both configurations account for every
            // accepted byte, not whatever happened to still sit in the
            // memtable when the clock stopped.
            db.flush()?;
            let after = db.metrics();
            let wrote = after.io.bytes_written - before.io.bytes_written;
            let accepted = after.db.user_bytes_written - before.db.user_bytes_written;
            rows.push(VsepRow {
                value_len,
                separated,
                ops: load.ops,
                ops_per_sec: load.throughput(),
                p50_us: load.percentile(50.0) / 1_000,
                p99_us: load.percentile(99.0) / 1_000,
                p999_us: load.percentile(99.9) / 1_000,
                write_amp: if accepted == 0 {
                    0.0
                } else {
                    wrote as f64 / accepted as f64
                },
            });
            db.close()?;
        }
    }
    let mut reductions = Vec::new();
    for &value_len in sizes {
        let amp = |sep: bool| {
            rows.iter()
                .find(|r| r.value_len == value_len && r.separated == sep)
                .map_or(0.0, |r| r.write_amp)
        };
        reductions.push((value_len, amp(false) / amp(true).max(1e-9)));
    }
    Ok(VsepResult { rows, reductions })
}

// ---------------------------------------------------------------------
// rendering + driver
// ---------------------------------------------------------------------

fn render_json(
    smoke: bool,
    trajectory: Option<&TrajectoryResult>,
    policies: Option<&PoliciesResult>,
    vsep: Option<&VsepResult>,
) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str("  \"bench\": \"bolt-tool-bench\",\n");
    out.push_str(&format!("  \"schema\": {BENCH_SCHEMA},\n"));
    out.push_str(&format!("  \"smoke\": {smoke},\n"));
    let mut sections: Vec<String> = Vec::new();
    if let Some(t) = trajectory {
        let mut s = String::new();
        s.push_str("  \"trajectory\": {\n");
        s.push_str(&format!("    \"threads\": {TRAJECTORY_THREADS},\n"));
        s.push_str("    \"value_len\": 1024,\n    \"rows\": [\n");
        for (i, r) in t.rows.iter().enumerate() {
            s.push_str(&format!(
                "      {{\"workload\": \"{}\", \"shards\": {}, \"ops\": {}, \
                 \"ops_per_sec\": {:.1}, \"p50_us\": {}, \"p99_us\": {}, \"p999_us\": {}}}{}\n",
                r.workload,
                r.shards,
                r.ops,
                r.ops_per_sec,
                r.p50_us,
                r.p99_us,
                r.p999_us,
                if i + 1 < t.rows.len() { "," } else { "" }
            ));
        }
        s.push_str("    ],\n    \"speedup_4x_over_1x\": {");
        for (i, (w, v)) in t.speedups.iter().enumerate() {
            s.push_str(&format!(
                "\"{}\": {:.2}{}",
                w,
                v,
                if i + 1 < t.speedups.len() { ", " } else { "" }
            ));
        }
        s.push_str("}\n  }");
        sections.push(s);
    }
    if let Some(p) = policies {
        let mut s = String::new();
        s.push_str("  \"policies\": {\n");
        s.push_str(&format!("    \"threads\": {POLICY_THREADS},\n"));
        s.push_str("    \"value_len\": 1024,\n    \"rows\": [\n");
        for (i, r) in p.rows.iter().enumerate() {
            s.push_str(&format!(
                "      {{\"policy\": \"{}\", \"workload\": \"{}\", \"ops\": {}, \
                 \"ops_per_sec\": {:.1}, \"p50_us\": {}, \"p99_us\": {}, \
                 \"write_amp\": {:.2}, \"read_amp\": {:.2}}}{}\n",
                r.policy,
                r.workload,
                r.ops,
                r.ops_per_sec,
                r.p50_us,
                r.p99_us,
                r.write_amp,
                r.read_amp,
                if i + 1 < p.rows.len() { "," } else { "" }
            ));
        }
        s.push_str("    ],\n    \"summary\": [\n");
        for (i, x) in p.summary.iter().enumerate() {
            s.push_str(&format!(
                "      {{\"policy\": \"{}\", \"write_amp\": {:.2}, \"read_amp_c\": {:.2}, \
                 \"space_amp\": {:.2}, \"barriers_per_compaction\": {:.2}}}{}\n",
                x.policy,
                x.write_amp,
                x.read_amp_c,
                x.space_amp,
                x.barriers_per_compaction,
                if i + 1 < p.summary.len() { "," } else { "" }
            ));
        }
        s.push_str("    ]\n  }");
        sections.push(s);
    }
    if let Some(v) = vsep {
        let mut s = String::new();
        s.push_str("  \"value_separation\": {\n");
        s.push_str(&format!(
            "    \"threads\": 4,\n    \"separation_threshold\": {VSEP_THRESHOLD},\n    \"rows\": [\n"
        ));
        for (i, r) in v.rows.iter().enumerate() {
            s.push_str(&format!(
                "      {{\"workload\": \"Load\", \"value_len\": {}, \"separated\": {}, \
                 \"ops\": {}, \"ops_per_sec\": {:.1}, \"p50_us\": {}, \"p99_us\": {}, \
                 \"p999_us\": {}, \"write_amp\": {:.2}}}{}\n",
                r.value_len,
                r.separated,
                r.ops,
                r.ops_per_sec,
                r.p50_us,
                r.p99_us,
                r.p999_us,
                r.write_amp,
                if i + 1 < v.rows.len() { "," } else { "" }
            ));
        }
        s.push_str("    ],\n    \"write_amp_reduction\": {");
        for (i, (len, red)) in v.reductions.iter().enumerate() {
            s.push_str(&format!(
                "\"{}\": {:.2}{}",
                len,
                red,
                if i + 1 < v.reductions.len() { ", " } else { "" }
            ));
        }
        s.push_str("}\n  }");
        sections.push(s);
    }
    out.push_str(&sections.join(",\n"));
    out.push_str("\n}\n");
    out
}

fn print_trajectory(t: &TrajectoryResult) {
    println!(
        "{:<9} {:>7} {:>12} {:>9} {:>9} {:>9}",
        "workload", "shards", "ops/s", "p50(us)", "p99(us)", "p999(us)"
    );
    for r in &t.rows {
        println!(
            "{:<9} {:>7} {:>12.1} {:>9} {:>9} {:>9}",
            r.workload, r.shards, r.ops_per_sec, r.p50_us, r.p99_us, r.p999_us
        );
    }
    for (w, s) in &t.speedups {
        println!("speedup {w}: {s:.2}x");
    }
}

fn print_policies(p: &PoliciesResult) {
    println!(
        "{:<13} {:<9} {:>10} {:>9} {:>9} {:>10} {:>9}",
        "policy", "workload", "ops/s", "p50(us)", "p99(us)", "write-amp", "read-amp"
    );
    for r in &p.rows {
        println!(
            "{:<13} {:<9} {:>10.1} {:>9} {:>9} {:>10.2} {:>9.2}",
            r.policy, r.workload, r.ops_per_sec, r.p50_us, r.p99_us, r.write_amp, r.read_amp
        );
    }
    for s in &p.summary {
        println!(
            "{}: write amp {:.2} | read amp (C) {:.2} | space amp {:.2} | barriers/compaction {:.2}",
            s.policy, s.write_amp, s.read_amp_c, s.space_amp, s.barriers_per_compaction
        );
    }
}

fn print_vsep(v: &VsepResult) {
    println!(
        "{:<10} {:>10} {:>12} {:>9} {:>9} {:>9} {:>10}",
        "value_len", "separated", "ops/s", "p50(us)", "p99(us)", "p999(us)", "write-amp"
    );
    for r in &v.rows {
        println!(
            "{:<10} {:>10} {:>12.1} {:>9} {:>9} {:>9} {:>10.2}",
            r.value_len, r.separated, r.ops_per_sec, r.p50_us, r.p99_us, r.p999_us, r.write_amp
        );
    }
    for (len, red) in &v.reductions {
        println!("write-amp reduction at {len} B values: {red:.2}x");
    }
}

/// Run the requested suites, print their tables, write the JSON (full
/// runs only), and enforce the accumulated perf floors.
///
/// # Errors
///
/// Returns database errors, I/O errors writing the result file, and
/// [`Error::InvalidState`] when a perf floor regressed.
pub fn run_bench(args: &BenchArgs) -> Result<()> {
    let known = ["trajectory", "policies", "value-separation"];
    for suite in &args.suites {
        if !known.contains(&suite.as_str()) {
            return Err(Error::InvalidArgument(format!(
                "unknown bench suite `{suite}` (try: {})",
                known.join(", ")
            )));
        }
    }
    let want = |name: &str| args.suites.is_empty() || args.suites.iter().any(|s| s == name);

    let trajectory = if want("trajectory") {
        let t = trajectory_suite(args.smoke)?;
        print_trajectory(&t);
        Some(t)
    } else {
        None
    };
    let policies = if want("policies") {
        let p = policies_suite(args.smoke)?;
        print_policies(&p);
        Some(p)
    } else {
        None
    };
    let vsep = if want("value-separation") {
        let v = vsep_suite(args.smoke)?;
        print_vsep(&v);
        Some(v)
    } else {
        None
    };

    if args.smoke {
        // CI smoke: harness correctness only — a toy key space on a free
        // device says nothing about amplification or scaling.
        let empty_phase = trajectory
            .iter()
            .flat_map(|t| t.rows.iter())
            .any(|r| r.ops == 0 || r.ops_per_sec <= 0.0)
            || policies
                .iter()
                .flat_map(|p| p.rows.iter())
                .any(|r| r.ops == 0 || r.ops_per_sec <= 0.0)
            || vsep
                .iter()
                .flat_map(|v| v.rows.iter())
                .any(|r| r.ops == 0 || r.ops_per_sec <= 0.0);
        if empty_phase {
            return Err(Error::InvalidState(
                "smoke run produced an empty phase".to_string(),
            ));
        }
        println!("smoke ok (results not recorded)");
        return Ok(());
    }

    let json = render_json(
        args.smoke,
        trajectory.as_ref(),
        policies.as_ref(),
        vsep.as_ref(),
    );
    std::fs::write(&args.out, &json)
        .map_err(|e| Error::io(format!("writing {}: {e}", args.out)))?;
    println!("(results written to {})", args.out);

    if let Some(t) = &trajectory {
        let load_speedup = t.speedups.first().map_or(0.0, |(_, s)| *s);
        if load_speedup < 2.5 {
            return Err(Error::InvalidState(format!(
                "write-heavy speedup regressed below the PR-6 floor: {load_speedup:.2}x < 2.5x"
            )));
        }
    }
    if let Some(p) = &policies {
        let leveled = p.summary.first().map_or(0.0, |s| s.write_amp);
        let lazy = p.summary.last().map_or(f64::MAX, |s| s.write_amp);
        if lazy >= leveled {
            return Err(Error::InvalidState(format!(
                "lazy-leveled write amp must beat leveled on the write-heavy suite: \
                 {lazy:.2} >= {leveled:.2}"
            )));
        }
    }
    if let Some(v) = &vsep {
        let at_16k = v
            .reductions
            .iter()
            .find(|(len, _)| *len == 16384)
            .map_or(0.0, |(_, r)| *r);
        if at_16k < 2.0 {
            return Err(Error::InvalidState(format!(
                "16 KiB-value Load write amp must be >=2x lower with separation on: \
                 got {at_16k:.2}x"
            )));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_vsep_suite_runs_and_separates() {
        let v = vsep_suite(true).unwrap();
        assert_eq!(v.rows.len(), 2);
        assert!(v.rows.iter().all(|r| r.ops > 0));
        // Even at toy scale the separated configuration must write fewer
        // device bytes per user byte than the unseparated one — the values
        // skip the flush path entirely.
        let off = v.rows.iter().find(|r| !r.separated).unwrap().write_amp;
        let on = v.rows.iter().find(|r| r.separated).unwrap().write_amp;
        assert!(on < off, "separated {on:.2} >= unseparated {off:.2}");
    }

    #[test]
    fn unknown_suite_is_rejected() {
        let args = BenchArgs {
            suites: vec!["no-such-suite".to_string()],
            ..BenchArgs::default()
        };
        assert!(run_bench(&args).is_err());
    }

    #[test]
    fn render_json_emits_every_section() {
        let t = TrajectoryResult {
            rows: vec![TrajectoryRow {
                workload: "Load",
                shards: 1,
                ops: 10,
                ops_per_sec: 100.0,
                p50_us: 1,
                p99_us: 2,
                p999_us: 3,
            }],
            speedups: vec![("Load", 3.0)],
        };
        let v = VsepResult {
            rows: vec![VsepRow {
                value_len: 16384,
                separated: true,
                ops: 10,
                ops_per_sec: 100.0,
                p50_us: 1,
                p99_us: 2,
                p999_us: 3,
                write_amp: 1.1,
            }],
            reductions: vec![(16384, 2.5)],
        };
        let json = render_json(false, Some(&t), None, Some(&v));
        assert!(json.contains("\"trajectory\""));
        assert!(json.contains("\"value_separation\""));
        assert!(json.contains("\"write_amp_reduction\": {\"16384\": 2.50}"));
        assert!(!json.contains("\"policies\""));
        // Well-formed JSON (no trailing commas, balanced braces).
        assert_eq!(
            json.matches('{').count(),
            json.matches('}').count(),
            "unbalanced braces:\n{json}"
        );
    }
}

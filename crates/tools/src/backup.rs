//! Incremental backup built on [`Db::checkpoint`].
//!
//! A backup directory holds any number of *generations*, each one a
//! complete, restorable image of the database at a checkpointed sequence
//! number — but physically the generations share payloads: every file of a
//! checkpoint is stored once under a content identity key
//! (`<name>@<size>-<crc32c>`), so an SSTable or value-log segment that
//! did not change between generations costs nothing the second time.
//!
//! ```text
//! <backup>/
//!   files/<name>@<size>-<crc>     shared payload store (rename-committed)
//!   gen-000001/BACKUP             generation manifest: file list + CRCs
//!   gen-000002/BACKUP
//!   staging/                      transient checkpoint, recreated per run
//! ```
//!
//! Crash safety, both directions:
//!
//! * **create** — payloads land under `files/` via temp-file + rename, so a
//!   half-copied payload can never be mistaken for a complete one; the
//!   generation's `BACKUP` manifest is written last, also via rename. A
//!   crash at any point leaves either a fully valid new generation or
//!   ignorable garbage (an orphan staging dir, unreferenced payloads, a
//!   `gen-N` dir with no manifest) — prior generations are never touched.
//! * **restore** — the destination is wiped (`CURRENT` deleted first) and
//!   rebuilt from the store with every byte CRC-verified; `CURRENT` is
//!   copied last, so an interrupted restore is not openable as a database. Restore is idempotent: running
//!   it again after any crash (even a crash *during the re-run*) converges
//!   to the same verified image.

use std::sync::Arc;

use bolt_common::crc32c::extend;
use bolt_common::{Error, Result};
use bolt_core::Db;
use bolt_env::{join_path, Env};

/// Copy chunk size; also the CRC streaming granularity.
const CHUNK: usize = 1 << 20;

/// What a backup operation did, for reports and assertions.
#[derive(Debug, Clone, Default)]
pub struct BackupReport {
    /// Generation created, restored, or (for verify) generations checked.
    pub generation: u64,
    /// Files referenced by the manifest(s) involved.
    pub files: u64,
    /// Files that were already present in the payload store (create) —
    /// the incremental savings — or generations verified (verify).
    pub shared: u64,
    /// Payload bytes newly written (create) or copied out (restore).
    pub bytes: u64,
    /// Checkpoint sequence number of the generation.
    pub sequence: u64,
}

fn files_dir(backup: &str) -> String {
    join_path(backup, "files")
}

fn gen_dir(backup: &str, generation: u64) -> String {
    join_path(backup, &format!("gen-{generation:06}"))
}

fn manifest_path(backup: &str, generation: u64) -> String {
    join_path(&gen_dir(backup, generation), "BACKUP")
}

fn staging_dir(backup: &str) -> String {
    join_path(backup, "staging")
}

/// One `file` line of a generation manifest.
#[derive(Debug, Clone, PartialEq, Eq)]
struct ManifestEntry {
    name: String,
    size: u64,
    crc: u32,
}

impl ManifestEntry {
    fn store_key(&self) -> String {
        format!("{}@{}-{:08x}", self.name, self.size, self.crc)
    }
}

/// Highest generation whose manifest exists, or 0 if none do. Generations
/// are numbered densely from 1, so probing upward terminates at the first
/// gap; a crashed create leaves a manifest-less `gen-N` dir which is then
/// reused by the next create.
fn latest_generation(env: &dyn Env, backup: &str) -> u64 {
    let mut generation = 0;
    while env.file_exists(&manifest_path(backup, generation + 1)) {
        generation += 1;
    }
    generation
}

/// Read a whole file through the env in chunks, feeding `sink`.
fn read_file_chunks(
    env: &dyn Env,
    path: &str,
    mut sink: impl FnMut(&[u8]) -> Result<()>,
) -> Result<u64> {
    let file = env.new_random_access_file(path)?;
    let len = file.len();
    let mut offset = 0u64;
    while offset < len {
        let take = CHUNK.min((len - offset) as usize);
        let chunk = file.read(offset, take)?;
        if chunk.is_empty() {
            return Err(Error::io(format!("short read from {path} at {offset}")));
        }
        offset += chunk.len() as u64;
        sink(&chunk)?;
    }
    Ok(len)
}

/// CRC32C of a whole file's contents, streamed chunk-at-a-time —
/// `extend` chains so memory stays O(CHUNK) regardless of file size, and
/// an empty file hashes to 0 (extend over nothing leaves the seed).
fn file_crc(env: &dyn Env, path: &str) -> Result<(u64, u32)> {
    let mut crc = 0u32;
    let size = read_file_chunks(env, path, |chunk| {
        crc = extend(crc, chunk);
        Ok(())
    })?;
    Ok((size, crc))
}

/// Copy `src` to `dst` via temp-file + rename so `dst`'s existence implies
/// a complete, synced copy. Returns the streamed CRC of the bytes written.
fn copy_committed(env: &dyn Env, src: &str, dst: &str) -> Result<(u64, u32)> {
    let tmp = format!("{dst}.tmp");
    let mut out = env.new_writable_file(&tmp)?;
    let mut crc = 0u32;
    let size = read_file_chunks(env, src, |chunk| {
        crc = extend(crc, chunk);
        out.append(chunk)
    })?;
    out.sync()?;
    drop(out);
    env.rename_file(&tmp, dst)?;
    Ok((size, crc))
}

/// Write a generation manifest (temp-file + rename; the trailing `ok` line
/// rejects truncated manifests at parse time).
fn write_manifest(
    env: &dyn Env,
    backup: &str,
    generation: u64,
    sequence: u64,
    entries: &[ManifestEntry],
) -> Result<()> {
    let mut body = String::from("bolt-backup 1\n");
    body.push_str(&format!("seq {sequence}\n"));
    for e in entries {
        body.push_str(&format!("file {} {} {:08x}\n", e.name, e.size, e.crc));
    }
    body.push_str("ok\n");
    let path = manifest_path(backup, generation);
    let tmp = format!("{path}.tmp");
    env.create_dir_all(&gen_dir(backup, generation))?;
    let mut f = env.new_writable_file(&tmp)?;
    f.append(body.as_bytes())?;
    f.sync()?;
    drop(f);
    env.rename_file(&tmp, &path)
}

/// Parse a generation manifest, rejecting torn or malformed files.
fn read_manifest(
    env: &dyn Env,
    backup: &str,
    generation: u64,
) -> Result<(u64, Vec<ManifestEntry>)> {
    let path = manifest_path(backup, generation);
    let mut data = Vec::new();
    read_file_chunks(env, &path, |chunk| {
        data.extend_from_slice(chunk);
        Ok(())
    })?;
    let text =
        String::from_utf8(data).map_err(|_| Error::corruption(format!("{path}: not UTF-8")))?;
    let mut lines = text.lines();
    if lines.next() != Some("bolt-backup 1") {
        return Err(Error::corruption(format!("{path}: bad header")));
    }
    let sequence = lines
        .next()
        .and_then(|l| l.strip_prefix("seq "))
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| Error::corruption(format!("{path}: bad seq line")))?;
    let mut entries = Vec::new();
    let mut closed = false;
    for line in lines {
        if line == "ok" {
            closed = true;
            break;
        }
        let mut parts = line.split(' ');
        let entry = (|| {
            if parts.next() != Some("file") {
                return None;
            }
            let name = parts.next()?.to_string();
            let size = parts.next()?.parse().ok()?;
            let crc = u32::from_str_radix(parts.next()?, 16).ok()?;
            Some(ManifestEntry { name, size, crc })
        })()
        .ok_or_else(|| Error::corruption(format!("{path}: bad line `{line}`")))?;
        entries.push(entry);
    }
    if !closed {
        return Err(Error::corruption(format!("{path}: truncated (no `ok`)")));
    }
    Ok((sequence, entries))
}

/// Create a new backup generation from a live database.
///
/// Takes an online [`Db::checkpoint`] into `<backup>/staging`, ingests
/// every checkpoint file into the shared payload store (skipping payloads
/// an earlier generation already stored), writes the generation manifest,
/// and dismantles the staging checkpoint.
///
/// # Errors
///
/// Propagates checkpoint and I/O errors; a failed create leaves previous
/// generations fully intact.
pub fn backup_create(env: &Arc<dyn Env>, db: &Db, backup: &str) -> Result<BackupReport> {
    env.create_dir_all(backup)?;
    env.create_dir_all(&files_dir(backup))?;
    // A previous create may have died mid-flight: clear its staging links
    // so the checkpoint below starts from an empty directory.
    let staging = staging_dir(backup);
    if let Ok(stale) = env.list_dir(&staging) {
        for name in stale {
            env.delete_file(&join_path(&staging, &name))?;
        }
    }

    let sequence = db.checkpoint(&staging)?;
    let mut report = BackupReport {
        generation: latest_generation(env.as_ref(), backup) + 1,
        sequence,
        ..BackupReport::default()
    };
    let mut entries = Vec::new();
    for name in env.list_dir(&staging)? {
        let src = join_path(&staging, &name);
        let (size, crc) = file_crc(env.as_ref(), &src)?;
        let entry = ManifestEntry { name, size, crc };
        let stored = join_path(&files_dir(backup), &entry.store_key());
        if env.file_exists(&stored) {
            report.shared += 1;
        } else {
            let (copied, copied_crc) = copy_committed(env.as_ref(), &src, &stored)?;
            if copied != size || copied_crc != crc {
                return Err(Error::io(format!(
                    "{src}: changed while being backed up ({copied} bytes vs {size})"
                )));
            }
            report.bytes += copied;
        }
        entries.push(entry);
        report.files += 1;
    }
    write_manifest(env.as_ref(), backup, report.generation, sequence, &entries)?;
    // The generation is committed; the staging checkpoint is now garbage.
    // Deleting only unlinks the staged names — payloads live in `files/`.
    for name in env.list_dir(&staging)? {
        env.delete_file(&join_path(&staging, &name))?;
    }
    Ok(report)
}

/// Restore generation `generation` (or the latest when `None`) into
/// `dest`, wiping whatever was there. Every payload byte is CRC-verified
/// on the way out; `CURRENT` is copied last so an interrupted restore
/// leaves a non-openable directory rather than a wrong database. Safe to
/// re-run after a crash — including a crash during the re-run itself.
///
/// # Errors
///
/// `NotFound` when the backup holds no generations (or not the requested
/// one), `Corruption` when a payload fails its CRC, plus I/O errors.
pub fn backup_restore(
    env: &Arc<dyn Env>,
    backup: &str,
    generation: Option<u64>,
    dest: &str,
) -> Result<BackupReport> {
    let generation = match generation {
        Some(generation) => generation,
        None => latest_generation(env.as_ref(), backup),
    };
    if generation == 0 || !env.file_exists(&manifest_path(backup, generation)) {
        return Err(Error::NotFound);
    }
    let (sequence, entries) = read_manifest(env.as_ref(), backup, generation)?;
    env.create_dir_all(dest)?;
    // Wipe the destination: stale files (a previous partial restore, an old
    // database) could otherwise leak into recovery — a leftover WAL would
    // replay, a leftover CURRENT could make a half-restored image openable.
    // CURRENT goes first: once any other file is gone the directory must
    // not claim to be a database, even if we crash mid-wipe.
    let mut stale = env.list_dir(dest)?;
    stale.sort_by_key(|name| name != "CURRENT");
    for name in stale {
        env.delete_file(&join_path(dest, &name))?;
    }
    let mut report = BackupReport {
        generation,
        sequence,
        ..BackupReport::default()
    };
    // CURRENT last: it is the atom that makes the directory a database.
    let mut ordered: Vec<&ManifestEntry> = entries.iter().collect();
    ordered.sort_by_key(|e| e.name == "CURRENT");
    for entry in ordered {
        let stored = join_path(&files_dir(backup), &entry.store_key());
        let (size, crc) = copy_committed(env.as_ref(), &stored, &join_path(dest, &entry.name))?;
        if size != entry.size || crc != entry.crc {
            return Err(Error::corruption(format!(
                "backup payload {} fails verification ({size} bytes, crc {crc:08x}, \
                 manifest says {} / {:08x})",
                entry.store_key(),
                entry.size,
                entry.crc
            )));
        }
        report.files += 1;
        report.bytes += size;
    }
    Ok(report)
}

/// Verify every generation in the backup: manifests parse, every payload
/// exists, and every payload's bytes match the manifest's size and CRC.
///
/// # Errors
///
/// `NotFound` for an empty backup; `Corruption` naming every broken
/// payload (all problems are collected before failing).
pub fn backup_verify(env: &Arc<dyn Env>, backup: &str) -> Result<BackupReport> {
    let latest = latest_generation(env.as_ref(), backup);
    if latest == 0 {
        return Err(Error::NotFound);
    }
    let mut report = BackupReport::default();
    let mut problems = Vec::new();
    for generation in 1..=latest {
        let (sequence, entries) = read_manifest(env.as_ref(), backup, generation)?;
        report.generation = generation;
        report.sequence = sequence;
        report.shared += 1; // generations checked
        for entry in &entries {
            report.files += 1;
            let stored = join_path(&files_dir(backup), &entry.store_key());
            if !env.file_exists(&stored) {
                problems.push(format!(
                    "gen {generation}: missing payload {}",
                    entry.store_key()
                ));
                continue;
            }
            match file_crc(env.as_ref(), &stored) {
                Ok((size, crc)) if size == entry.size && crc == entry.crc => {
                    report.bytes += size;
                }
                Ok((size, crc)) => problems.push(format!(
                    "gen {generation}: payload {} is {size} bytes crc {crc:08x}, \
                     manifest says {} / {:08x}",
                    entry.store_key(),
                    entry.size,
                    entry.crc
                )),
                Err(e) => problems.push(format!(
                    "gen {generation}: payload {} unreadable: {e}",
                    entry.store_key()
                )),
            }
        }
    }
    if problems.is_empty() {
        Ok(report)
    } else {
        Err(Error::corruption(problems.join("; ")))
    }
}

/// Render a report for the CLI.
pub fn render_backup_report(verb: &str, r: &BackupReport) -> String {
    match verb {
        "create" => format!(
            "backup: created generation {} at sequence {} — {} file(s), \
             {} shared with earlier generations, {} new byte(s)\n",
            r.generation, r.sequence, r.files, r.shared, r.bytes
        ),
        "restore" => format!(
            "backup: restored generation {} (sequence {}) — {} file(s), {} byte(s), \
             all CRC-verified\n",
            r.generation, r.sequence, r.files, r.bytes
        ),
        _ => format!(
            "backup: verified {} generation(s) — {} payload reference(s), \
             {} byte(s) checked, latest generation {} at sequence {}\n",
            r.shared, r.files, r.bytes, r.generation, r.sequence
        ),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bolt_core::Options;
    use bolt_env::{CrashConfig, FaultEnv, FaultPlan, MemEnv};

    fn opts() -> Options {
        Options::bolt().scaled(1.0 / 256.0)
    }

    fn scan(db: &Db) -> Vec<(Vec<u8>, Vec<u8>)> {
        let mut out = Vec::new();
        let mut it = db.iter().unwrap();
        it.seek_to_first().unwrap();
        while it.valid() {
            out.push((it.key().to_vec(), it.value().to_vec()));
            it.next().unwrap();
        }
        out
    }

    #[test]
    fn streamed_crc_matches_one_shot_across_chunks() {
        use bolt_common::crc32c::crc32c;
        let env: Arc<dyn Env> = Arc::new(MemEnv::new());
        env.create_dir_all("d").unwrap();
        // Spans three read chunks (with a ragged tail) so the test fails if
        // chunked `extend` chaining ever diverges from hashing the whole
        // file at once.
        let body: Vec<u8> = (0..(2 * CHUNK + CHUNK / 3))
            .map(|i| (i * 31 % 251) as u8)
            .collect();
        let mut f = env.new_writable_file("d/big").unwrap();
        f.append(&body).unwrap();
        f.sync().unwrap();
        drop(f);

        let (size, crc) = file_crc(env.as_ref(), "d/big").unwrap();
        assert_eq!(size, body.len() as u64);
        assert_eq!(crc, crc32c(&body));

        let (size, crc) = copy_committed(env.as_ref(), "d/big", "d/copy").unwrap();
        assert_eq!(size, body.len() as u64);
        assert_eq!(crc, crc32c(&body));
        let copy = env.new_random_access_file("d/copy").unwrap();
        assert_eq!(copy.read(0, body.len()).unwrap(), body);

        // Empty file: no chunks ever reach the hasher; crc stays 0.
        let mut f = env.new_writable_file("d/empty").unwrap();
        f.sync().unwrap();
        drop(f);
        assert_eq!(file_crc(env.as_ref(), "d/empty").unwrap(), (0, 0));
    }

    #[test]
    fn create_restore_roundtrip() {
        let env: Arc<dyn Env> = Arc::new(MemEnv::new());
        let db = Db::open(Arc::clone(&env), "db", opts()).unwrap();
        for i in 0..300u32 {
            db.put(format!("k{i:05}").as_bytes(), format!("v{i}").as_bytes())
                .unwrap();
        }
        let report = backup_create(&env, &db, "bak").unwrap();
        assert_eq!(report.generation, 1);
        let want = scan(&db);
        db.close().unwrap();

        backup_restore(&env, "bak", None, "restored").unwrap();
        let copy = Db::open(Arc::clone(&env), "restored", opts()).unwrap();
        assert_eq!(scan(&copy), want);
        copy.close().unwrap();
        backup_verify(&env, "bak").unwrap();
    }

    /// The ISSUE's end-to-end acceptance path: a backup cut while writers
    /// are still appending restores into a database that opens at exactly
    /// the checkpoint's pinned sequence and whose scan is a consistent
    /// write prefix — no torn values, no gaps, no unwritten keys.
    #[test]
    fn backup_of_live_db_restores_pinned_snapshot() {
        let env: Arc<dyn Env> = Arc::new(MemEnv::new());
        let db = Arc::new(Db::open(Arc::clone(&env), "db", opts()).unwrap());
        let stop = Arc::new(std::sync::atomic::AtomicBool::new(false));
        let handles: Vec<_> = (0..3u32)
            .map(|t| {
                let db = Arc::clone(&db);
                let stop = Arc::clone(&stop);
                std::thread::spawn(move || {
                    let mut i = 0u32;
                    while !stop.load(std::sync::atomic::Ordering::Relaxed) {
                        db.put(
                            format!("t{t}-{i:05}").as_bytes(),
                            format!("{t}:{i}").as_bytes(),
                        )
                        .unwrap();
                        i += 1;
                    }
                    i
                })
            })
            .collect();
        while db.snapshot().sequence() < 400 {
            std::thread::yield_now();
        }
        let report = backup_create(&env, &db, "bak").unwrap();
        stop.store(true, std::sync::atomic::Ordering::Relaxed);
        let written: Vec<u32> = handles.into_iter().map(|h| h.join().unwrap()).collect();
        db.close().unwrap();

        backup_restore(&env, "bak", None, "restored").unwrap();
        let copy = Db::open(Arc::clone(&env), "restored", opts()).unwrap();
        assert_eq!(
            copy.snapshot().sequence(),
            report.sequence,
            "restored DB is not at the pinned checkpoint sequence"
        );
        let entries = scan(&copy);
        assert!(!entries.is_empty(), "backup captured nothing");
        let mut max_seen = [None::<u32>; 3];
        let mut count = [0u32; 3];
        for (k, v) in &entries {
            let k = std::str::from_utf8(k).unwrap();
            let (t, i) = k[1..].split_once('-').unwrap();
            let (t, i): (usize, u32) = (t.parse().unwrap(), i.parse().unwrap());
            assert_eq!(v, format!("{t}:{i}").as_bytes(), "torn value");
            max_seen[t] = Some(max_seen[t].map_or(i, |m| m.max(i)));
            count[t] += 1;
        }
        for t in 0..3 {
            if let Some(max) = max_seen[t] {
                assert_eq!(count[t], max + 1, "gap in thread {t}'s write prefix");
                assert!(max < written[t], "backup holds unwritten key");
            }
        }
        copy.close().unwrap();
    }

    #[test]
    fn generations_share_unchanged_payloads() {
        let env: Arc<dyn Env> = Arc::new(MemEnv::new());
        let db = Db::open(Arc::clone(&env), "db", opts()).unwrap();
        for i in 0..400u32 {
            db.put(format!("a{i:05}").as_bytes(), b"gen1").unwrap();
        }
        db.flush().unwrap();
        backup_create(&env, &db, "bak").unwrap();
        let want_gen1 = scan(&db);

        // New data lands in new tables; the old tables are unchanged and
        // their payloads must be shared, not re-stored.
        for i in 0..400u32 {
            db.put(format!("b{i:05}").as_bytes(), b"gen2").unwrap();
        }
        db.flush().unwrap();
        let second = backup_create(&env, &db, "bak").unwrap();
        assert_eq!(second.generation, 2);
        assert!(
            second.shared > 0,
            "second generation stored every payload again: {second:?}"
        );
        let want_gen2 = scan(&db);
        db.close().unwrap();

        backup_verify(&env, "bak").unwrap();
        backup_restore(&env, "bak", Some(1), "r1").unwrap();
        backup_restore(&env, "bak", Some(2), "r2").unwrap();
        let db1 = Db::open(Arc::clone(&env), "r1", opts()).unwrap();
        assert_eq!(scan(&db1), want_gen1, "generation 1 diverged");
        db1.close().unwrap();
        let db2 = Db::open(Arc::clone(&env), "r2", opts()).unwrap();
        assert_eq!(scan(&db2), want_gen2, "generation 2 diverged");
        db2.close().unwrap();
    }

    #[test]
    fn verify_catches_payload_corruption() {
        let env: Arc<dyn Env> = Arc::new(MemEnv::new());
        let db = Db::open(Arc::clone(&env), "db", opts()).unwrap();
        for i in 0..200u32 {
            db.put(format!("k{i:05}").as_bytes(), b"v").unwrap();
        }
        db.flush().unwrap();
        backup_create(&env, &db, "bak").unwrap();
        db.close().unwrap();
        backup_verify(&env, "bak").unwrap();

        // Flip bytes in the largest payload (an SSTable).
        let victim = env
            .list_dir("bak/files")
            .unwrap()
            .into_iter()
            .max_by_key(|name| env.file_size(&format!("bak/files/{name}")).unwrap_or(0))
            .unwrap();
        let mut f = env
            .new_writable_file(&format!("bak/files/{victim}"))
            .unwrap();
        f.append(b"garbage").unwrap();
        f.sync().unwrap();
        drop(f);
        let err = backup_verify(&env, "bak").unwrap_err();
        assert!(err.is_corruption(), "got {err}");
        // Restoring the broken generation must also refuse.
        assert!(backup_restore(&env, "bak", None, "r").is_err());
    }

    #[test]
    fn restore_refuses_missing_generation() {
        let env: Arc<dyn Env> = Arc::new(MemEnv::new());
        env.create_dir_all("bak").unwrap();
        assert!(backup_restore(&env, "bak", None, "r")
            .unwrap_err()
            .is_not_found());
        assert!(backup_verify(&env, "bak").unwrap_err().is_not_found());
    }

    /// Crash a restore at every op of its trace, then re-run it — and for
    /// good measure crash the *re-run* too and restore a third time. The
    /// final image must be byte-identical to the backed-up snapshot, and a
    /// half-restored directory must never be openable.
    #[test]
    fn double_crash_during_restore_converges() {
        // Build a backup once on a plain MemEnv, then copy its files into
        // each FaultEnv run via the backup itself (create is cheap).
        let fenv = FaultEnv::over_mem();
        let env: Arc<dyn Env> = Arc::new(fenv.clone());
        let db = Db::open(Arc::clone(&env), "db", opts()).unwrap();
        for i in 0..250u32 {
            db.put(format!("k{i:05}").as_bytes(), format!("v{i}").as_bytes())
                .unwrap();
        }
        backup_create(&env, &db, "bak").unwrap();
        let want = scan(&db);
        db.close().unwrap();

        // Record a clean restore to learn its op count.
        fenv.start_recording();
        backup_restore(&env, "bak", None, "probe").unwrap();
        let restore_ops = fenv.stop_recording().len() as u64;
        assert!(restore_ops > 4, "restore trace suspiciously short");

        let step = (restore_ops / 12).max(1);
        let mut covered = 0;
        for first in (0..restore_ops).step_by(step as usize) {
            // First crash, mid-restore.
            fenv.set_plan(FaultPlan::new().crash_at_op(fenv.op_count() + first));
            let r1 = backup_restore(&env, "bak", None, "dest");
            fenv.crash_inner(CrashConfig::Clean);
            fenv.reset();
            if r1.is_err() && fenv.file_exists("dest/CURRENT") {
                // Interrupted but the directory still carries a CURRENT:
                // it must either refuse to open (it references wiped files)
                // or open to the *correct* snapshot (the crash landed
                // before the previous complete image was disturbed). When
                // CURRENT is absent the dir is ignorable garbage — opening
                // it would just create a fresh empty database.
                if let Ok(db) = Db::open(Arc::clone(&env), "dest", opts()) {
                    assert_eq!(
                        scan(&db),
                        want,
                        "crash@{first}: interrupted restore left a wrong but openable image"
                    );
                    db.close().unwrap();
                }
            }
            // Second crash, somewhere inside the re-run.
            fenv.set_plan(FaultPlan::new().crash_at_op(fenv.op_count() + first / 2));
            let _ = backup_restore(&env, "bak", None, "dest");
            fenv.crash_inner(CrashConfig::Clean);
            fenv.reset();
            // Third run with no faults must converge.
            backup_restore(&env, "bak", None, "dest").unwrap();
            let db = Db::open(Arc::clone(&env), "dest", opts()).unwrap();
            assert_eq!(scan(&db), want, "crash@{first}: restore diverged");
            db.close().unwrap();
            covered += 1;
        }
        assert!(covered >= 10, "too few crash points covered: {covered}");
        backup_verify(&env, "bak").unwrap();
    }
}

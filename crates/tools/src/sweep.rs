//! Crash-point sweep harness.
//!
//! Runs a write + flush + group-compaction + settled-compaction +
//! pinned-hole-punch workload over a [`FaultEnv`], *records* the op trace,
//! then replays the workload crashing at every selected op index (plus an
//! `EIO` sweep over sync ordinals, plus a *double-crash* sweep that crashes
//! again inside the `Db::open` recovery replay). After each crash the
//! database is reopened and the four recovery invariants of DESIGN.md §9
//! are checked:
//!
//! * **I1 — acked-sync durability**: every write acknowledged with
//!   `sync = true` (or acknowledged at all before a completed flush)
//!   survives recovery.
//! * **I2 — batch atomicity**: a batch is visible in full or not at all;
//!   the workload writes each batch as a two-key pair that must never
//!   diverge.
//! * **I3 — MANIFEST integrity**: the recovered MANIFEST references only
//!   logical SSTables whose bytes are present and checksum-clean (never
//!   unsynced or hole-punched data).
//! * **I4 — idempotent re-recovery**: closing and reopening the recovered
//!   database yields the identical key space.
//!
//! With [`SweepConfig::vlog`] the same workload runs under WAL-time value
//! separation (a tiny threshold routes every pair value through the value
//! log, and tiny segments force rotations), every `.vlog` op in the trace
//! becomes a forced crash point, and the invariants above subsume the
//! value-log contract of DESIGN.md §14:
//!
//! * **V1 — no dangling pointers**: every key readable after recovery
//!   resolves to its full value (`get` and the full scan of I4 resolve
//!   every stored pointer; a pointer into missing, truncated, or punched
//!   value-log bytes surfaces as a `Corruption` error and is reported).
//!
//! The workload also runs a *range-delete phase* (a dedicated `rd*` key
//! space whose middle is covered by one ranged tombstone, then partially
//! resurrected), checked after every crash as:
//!
//! * **I5 — range-tombstone durability**: once the tombstone is durable,
//!   covered keys stay gone (unless durably reborn); uncovered keys and
//!   not-yet-deleted keys read back their exact durable values.
//!
//! With [`SweepConfig::checkpoint`] the workload ends with an online
//! [`Db::checkpoint`] into `ckpt/`, every op in the checkpoint window is a
//! forced crash point, and each crash additionally checks DESIGN.md §15:
//!
//! * **C1 — checkpoint atomicity**: an *acked* checkpoint directory opens
//!   cleanly and scans byte-identical to the pinned snapshot; an unacked
//!   one either lacks `CURRENT` (ignorable garbage) or opens cleanly.
//!
//! Invariant violations are *collected*, not thrown, so one sweep reports
//! every broken crash point at once.

use std::sync::Arc;

use bolt_common::Result;
use bolt_core::{CompactionPolicyKind, Db, Options, WriteBatch, WriteOptions};
use bolt_env::{CrashConfig, Env, FaultEnv, FaultPlan, OpKind, OpRecord};

use crate::verify_db;

/// Number of two-key pairs in the workload key space.
const PAIRS: usize = 24;
/// Write rounds; every pair is rewritten each round.
const ROUNDS: u32 = 6;
/// Disjoint filler ranges cycled across rounds. Each range is written in
/// its own round(s), so whole L0 runs have zero overlap at the level below
/// — the shape settled compaction promotes without rewriting.
const FILLER_RANGES: u32 = 3;
/// Filler keys written per round.
const FILLER_PER_ROUND: u32 = 60;
/// Keys in the pinned hole-punch range (`h0000..`); the middle third is
/// rewritten to kill its logical tables while the flanks stay live.
const HOLE_KEYS: u32 = 120;

/// Keys in the range-delete phase key space (`rd0000..`).
const RD_KEYS: u32 = 90;
/// The ranged tombstone covers `[RD_DEL_BEGIN, RD_DEL_END)`.
const RD_DEL_BEGIN: u32 = 20;
const RD_DEL_END: u32 = 70;
/// Covered keys rewritten ("reborn") after the tombstone.
const RD_REBIRTH_BEGIN: u32 = 30;
const RD_REBIRTH_END: u32 = 35;

fn hole_key(i: u32) -> String {
    format!("h{i:04}")
}

fn rd_key(i: u32) -> String {
    format!("rd{i:04}")
}

fn rd_alive(i: u32) -> Vec<u8> {
    // Padding pushes the value past the vlog separation threshold, so in
    // vlog mode the tombstone covers separated values.
    format!("alive-{i:04}-{}", "a".repeat(72)).into_bytes()
}

fn rd_reborn(i: u32) -> Vec<u8> {
    format!("reborn-{i:04}-{}", "b".repeat(72)).into_bytes()
}

/// How far the workload's range-delete phase provably got, in durability
/// terms. Each transition is recorded *around* the call that makes it
/// true, so after a crash the recovered state can be asserted exactly at
/// the boundaries and left indeterminate in between (an unsynced
/// tombstone may or may not have reached the WAL).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, PartialOrd, Ord)]
enum RdPhase {
    /// Phase not reached (or its writes not yet flushed).
    #[default]
    NotStarted,
    /// All `rd*` writes flushed: they are durable.
    WritesDurable,
    /// `delete_range` was issued; its ack is unknown.
    DeleteAttempted,
    /// `delete_range` returned `Ok` (unsynced).
    DeleteAcked,
    /// A flush completed after the ack: the tombstone is durable.
    DeleteDurable,
    /// Rebirth writes were issued over the covered range.
    RebirthAttempted,
    /// Rebirth writes flushed: they are durable.
    RebirthDurable,
}

/// Sweep tuning knobs.
#[derive(Debug, Clone)]
pub struct SweepConfig {
    /// Base seed for torn-tail crash randomness (the sweep itself is
    /// deterministic given the seed).
    pub seed: u64,
    /// Upper bound on enumerated crash points.
    pub max_crash_points: usize,
    /// Upper bound on `EIO`-on-sync points.
    pub max_eio_points: usize,
    /// Workload crash points re-used as the *first* crash of a
    /// double-crash pair (0 disables the double-crash phase).
    pub max_double_crash_first: usize,
    /// Recovery-replay ops crashed per first crash point (the *second*
    /// crash, landing inside `Db::open`).
    pub max_double_crash_second: usize,
    /// Compaction policy the swept database runs. The recovery invariants
    /// I1–I4 must hold regardless of how victims are picked.
    pub policy: CompactionPolicyKind,
    /// Run the workload under WAL-time value separation and force-cover
    /// every `.vlog` op (appends torn) as a crash point.
    pub vlog: bool,
    /// End the workload with an online [`Db::checkpoint`] into `ckpt/`,
    /// force-cover every op inside the checkpoint window, and check
    /// invariant C1 after each crash: an acked checkpoint opens cleanly
    /// and equals the pinned snapshot; an unacked one either has no
    /// `CURRENT` (ignorable garbage) or still opens cleanly.
    pub checkpoint: bool,
}

impl Default for SweepConfig {
    fn default() -> Self {
        SweepConfig {
            seed: 0xB017,
            max_crash_points: 72,
            max_eio_points: 16,
            max_double_crash_first: 4,
            max_double_crash_second: 5,
            policy: CompactionPolicyKind::Leveled,
            vlog: false,
            checkpoint: false,
        }
    }
}

/// Workload phase coverage observed during the record run.
#[derive(Debug, Clone, Copy, Default)]
pub struct SweepCoverage {
    /// MemTable flushes completed.
    pub flushes: u64,
    /// Compactions completed.
    pub compactions: u64,
    /// Settled (MANIFEST-only) promotions.
    pub settled_moves: u64,
    /// Holes punched reclaiming dead logical SSTables.
    pub holes_punched: u64,
    /// Self-healing MANIFEST re-cuts (O5) that absorbed an injected fault.
    pub recuts: u64,
    /// Values routed to the value log (vlog mode only).
    pub vlog_separated: u64,
    /// Value-log segments retired whole by compaction (vlog mode only).
    pub vlog_retired: u64,
    /// Ranged tombstones written by the range-delete phase.
    pub range_deletes: u64,
    /// Online checkpoints completed (checkpoint mode only).
    pub checkpoints: u64,
}

/// Everything a sweep learned.
#[derive(Debug, Clone)]
pub struct SweepOutcome {
    /// Compaction policy the sweep ran under.
    pub policy: CompactionPolicyKind,
    /// Ops counted in the record run.
    pub ops_recorded: u64,
    /// Sync/ordering barriers counted in the record run.
    pub syncs_recorded: u64,
    /// Phase markers from the record run, as `(op_index, label)`.
    pub phases: Vec<(u64, String)>,
    /// Crash points actually exercised (op indices).
    pub crash_points: Vec<u64>,
    /// Sync ordinals exercised with injected `EIO`.
    pub eio_points: Vec<u64>,
    /// Double-crash pairs exercised, as `(workload op, recovery op)`: the
    /// first crash interrupts the workload, the second interrupts the
    /// `Db::open` replay recovering from it.
    pub double_crash_points: Vec<(u64, u64)>,
    /// Coverage counters from the record run.
    pub coverage: SweepCoverage,
    /// Human-readable invariant violations (empty on a clean sweep).
    pub violations: Vec<String>,
}

/// Per-pair model of what the workload was told about its own writes.
#[derive(Debug, Clone, Copy, Default)]
struct PairState {
    /// Highest round whose write call was *issued* (acked or not).
    attempted: Option<u32>,
    /// Highest round acknowledged (`write_opt` returned `Ok`).
    acked: Option<u32>,
    /// Highest round guaranteed durable: acked with `sync = true`, or
    /// acked before a flush that completed.
    durable_floor: Option<u32>,
}

struct WorkloadOutcome {
    pairs: Vec<PairState>,
    /// Range-delete phase progress (see [`RdPhase`]).
    rd: RdPhase,
    /// `Db::checkpoint("ckpt")` returned `Ok` (checkpoint mode only).
    ckpt_acked: bool,
    /// Full scan captured right after the checkpoint ack, while quiescent:
    /// exactly the image the checkpoint pinned.
    ckpt_expected: Option<Vec<(Vec<u8>, Vec<u8>)>>,
    /// Errors the workload observed (write/flush/compact/close).
    errors: usize,
    stats: SweepCoverage,
}

fn pair_keys(p: usize) -> (String, String) {
    (format!("k{p:03}a"), format!("k{p:03}b"))
}

fn pair_value(round: u32, p: usize) -> String {
    // Round is recoverable from the value; padding forces enough bytes
    // through the memtable that flushes and compactions actually happen.
    format!("r{round:04}-p{p:03}-{}", "v".repeat(72))
}

fn value_round(value: &[u8]) -> Option<u32> {
    let s = std::str::from_utf8(value).ok()?;
    s.strip_prefix('r')?.get(..4)?.parse().ok()
}

/// Run the fixed workload over `env`. Every I/O failure is tolerated and
/// counted; once the env reports a crash the workload stops early.
fn run_workload(env: &FaultEnv, opts: &Options, marks: bool, checkpoint: bool) -> WorkloadOutcome {
    let mut out = WorkloadOutcome {
        pairs: vec![PairState::default(); PAIRS],
        rd: RdPhase::default(),
        ckpt_acked: false,
        ckpt_expected: None,
        errors: 0,
        stats: SweepCoverage::default(),
    };
    let arc_env: Arc<dyn Env> = Arc::new(env.clone());
    let db = match Db::open(arc_env, "db", opts.clone()) {
        Ok(db) => db,
        Err(_) => {
            out.errors += 1;
            return out;
        }
    };
    'work: {
        for round in 0..ROUNDS {
            for p in 0..PAIRS {
                let (ka, kb) = pair_keys(p);
                let value = pair_value(round, p);
                let mut batch = WriteBatch::new();
                batch.put(ka.as_bytes(), value.as_bytes());
                batch.put(kb.as_bytes(), value.as_bytes());
                let sync = (round as usize + p).is_multiple_of(3);
                out.pairs[p].attempted = Some(round);
                match db.write_opt(batch, &WriteOptions { sync: Some(sync) }) {
                    Ok(()) => {
                        out.pairs[p].acked = Some(round);
                        if sync {
                            out.pairs[p].durable_floor = Some(round);
                        }
                    }
                    Err(_) => {
                        out.errors += 1;
                        if env.crashed() {
                            break 'work;
                        }
                    }
                }
            }
            // Filler writes: round r rewrites disjoint range `f{r % 3}`.
            // The disjointness manufactures settled-compaction victims;
            // rewriting a range on a later round kills the earlier tables so
            // garbage collection has holes to punch.
            for i in 0..FILLER_PER_ROUND {
                let key = format!("f{:02}key{i:04}", round % FILLER_RANGES);
                if db.put(key.as_bytes(), &[b'z'; 100]).is_err() {
                    out.errors += 1;
                    if env.crashed() {
                        break 'work;
                    }
                }
            }
            if marks {
                env.mark(&format!("round-{round}"));
            }
            match db.flush() {
                Ok(()) => {
                    // A completed flush commits the memtable: everything
                    // acknowledged so far is durable even without sync.
                    for pair in &mut out.pairs {
                        if pair.acked.is_some() {
                            pair.durable_floor = pair.durable_floor.max(pair.acked);
                        }
                    }
                }
                Err(_) => {
                    out.errors += 1;
                    if env.crashed() {
                        break 'work;
                    }
                }
            }
            if round % 2 == 1 {
                if db.compact_until_quiet().is_err() {
                    out.errors += 1;
                    if env.crashed() {
                        break 'work;
                    }
                } else if marks {
                    env.mark(&format!("compact-{round}"));
                }
            }
        }
        if db.compact_until_quiet().is_err() {
            out.errors += 1;
        } else if marks {
            env.mark("final-compact");
        }
        // Pinned hole-punch phase: settle one compaction file full of `h*`
        // logical tables, then rewrite and compact only the middle of the
        // range. The flanking tables stay live and pin the file, so GC can
        // only reclaim the dead middle by punching holes — deterministic
        // `holes_punched > 0` coverage instead of hoping a partially-live
        // file falls out of the main workload.
        'punch: {
            for i in 0..HOLE_KEYS {
                if db.put(hole_key(i).as_bytes(), &[b'h'; 160]).is_err() {
                    out.errors += 1;
                    if env.crashed() {
                        break 'work;
                    }
                    break 'punch;
                }
            }
            if db.flush().is_err() || db.compact_until_quiet().is_err() {
                out.errors += 1;
                if env.crashed() {
                    break 'work;
                }
                break 'punch;
            }
            for i in HOLE_KEYS / 3..2 * HOLE_KEYS / 3 {
                if db.put(hole_key(i).as_bytes(), &[b'H'; 160]).is_err() {
                    out.errors += 1;
                    if env.crashed() {
                        break 'work;
                    }
                    break 'punch;
                }
            }
            if db.flush().is_err()
                || db
                    .compact_range(
                        hole_key(HOLE_KEYS / 3).as_bytes(),
                        hole_key(2 * HOLE_KEYS / 3).as_bytes(),
                    )
                    .is_err()
                || db.compact_until_quiet().is_err()
            {
                out.errors += 1;
                if env.crashed() {
                    break 'work;
                }
                break 'punch;
            }
            if marks {
                env.mark("hole-punch");
            }
        }
        // Range-delete phase: write a dedicated key space durably, cover
        // its middle with one ranged tombstone, make the tombstone durable,
        // then resurrect a few covered keys and push everything through
        // compaction. `out.rd` records each durability boundary so the
        // recovery invariants can assert exactly at the boundaries and
        // stay agnostic in between.
        'rdel: {
            for i in 0..RD_KEYS {
                if db.put(rd_key(i).as_bytes(), &rd_alive(i)).is_err() {
                    out.errors += 1;
                    if env.crashed() {
                        break 'work;
                    }
                    break 'rdel;
                }
            }
            if db.flush().is_err() {
                out.errors += 1;
                if env.crashed() {
                    break 'work;
                }
                break 'rdel;
            }
            out.rd = RdPhase::WritesDurable;
            if marks {
                env.mark("range-delete");
            }
            out.rd = RdPhase::DeleteAttempted;
            match db.delete_range(
                rd_key(RD_DEL_BEGIN).as_bytes(),
                rd_key(RD_DEL_END).as_bytes(),
            ) {
                Ok(()) => out.rd = RdPhase::DeleteAcked,
                Err(_) => {
                    out.errors += 1;
                    if env.crashed() {
                        break 'work;
                    }
                    break 'rdel;
                }
            }
            if db.flush().is_err() {
                out.errors += 1;
                if env.crashed() {
                    break 'work;
                }
                break 'rdel;
            }
            out.rd = RdPhase::DeleteDurable;
            out.rd = RdPhase::RebirthAttempted;
            for i in RD_REBIRTH_BEGIN..RD_REBIRTH_END {
                if db.put(rd_key(i).as_bytes(), &rd_reborn(i)).is_err() {
                    out.errors += 1;
                    if env.crashed() {
                        break 'work;
                    }
                    break 'rdel;
                }
            }
            if db.flush().is_err() {
                out.errors += 1;
                if env.crashed() {
                    break 'work;
                }
                break 'rdel;
            }
            out.rd = RdPhase::RebirthDurable;
            // Drive the tombstone down through the data tables.
            if db.compact_until_quiet().is_err() {
                out.errors += 1;
                if env.crashed() {
                    break 'work;
                }
            }
        }
        // Self-healing re-cut phase (O5): write one more round, then arm a
        // MANIFEST-sync EIO and flush. The failed commit barrier must be
        // absorbed by a re-cut — the flush still acknowledges durably, with
        // no reopen. The `recut-arm`/`recut-done` markers bound the window
        // whose every intermediate state (torn old MANIFEST, unswung
        // CURRENT, not-yet-re-appended edit) the crash sweep force-covers.
        'recut: {
            for p in 0..PAIRS {
                let (ka, kb) = pair_keys(p);
                let value = pair_value(ROUNDS, p);
                let mut batch = WriteBatch::new();
                batch.put(ka.as_bytes(), value.as_bytes());
                batch.put(kb.as_bytes(), value.as_bytes());
                out.pairs[p].attempted = Some(ROUNDS);
                match db.write_opt(batch, &WriteOptions { sync: Some(false) }) {
                    Ok(()) => out.pairs[p].acked = Some(ROUNDS),
                    Err(_) => {
                        out.errors += 1;
                        if env.crashed() {
                            break 'work;
                        }
                        break 'recut;
                    }
                }
            }
            if marks {
                env.mark("recut-arm");
            }
            env.extend_plan(
                FaultPlan::parse("eio:sync:glob=MANIFEST-*:nth=0").expect("static plan"),
            );
            match db.flush() {
                Ok(()) => {
                    for pair in &mut out.pairs {
                        if pair.acked.is_some() {
                            pair.durable_floor = pair.durable_floor.max(pair.acked);
                        }
                    }
                }
                Err(_) => {
                    out.errors += 1;
                    if env.crashed() {
                        break 'work;
                    }
                    break 'recut;
                }
            }
            if marks {
                env.mark("recut-done");
            }
        }
        // Online-checkpoint phase (C1): checkpoint into `ckpt/` and capture
        // the exact image the ack promised (the workload is quiescent, so a
        // post-ack scan *is* the pinned snapshot). The `ckpt-arm` /
        // `ckpt-done` markers bound the window whose every op the sweep
        // force-covers: a crash anywhere inside must leave either no
        // `ckpt/CURRENT` (ignorable garbage) or a complete, openable image.
        if checkpoint {
            'ckpt: {
                if marks {
                    env.mark("ckpt-arm");
                }
                match db.checkpoint("ckpt") {
                    Ok(_) => out.ckpt_acked = true,
                    Err(_) => {
                        out.errors += 1;
                        if env.crashed() {
                            break 'work;
                        }
                        break 'ckpt;
                    }
                }
                match full_scan(&db) {
                    Ok(scan) => out.ckpt_expected = Some(scan),
                    Err(_) => {
                        out.errors += 1;
                        if env.crashed() {
                            break 'work;
                        }
                    }
                }
                if marks {
                    env.mark("ckpt-done");
                }
            }
        }
    }
    if db.close().is_err() {
        out.errors += 1;
    }
    // Capture coverage only after close() has joined the background
    // thread: a MANIFEST re-cut absorbing an injected sync error can land
    // in a late background compaction, and snapshotting `manifest_recuts`
    // before the join undercounts it — making a correctly-absorbed fault
    // look swallowed.
    let s = db.stats().snapshot();
    out.stats = SweepCoverage {
        flushes: s.flushes,
        compactions: s.compactions,
        settled_moves: s.settled_moves,
        holes_punched: env.stats().snapshot().holes_punched,
        recuts: db.metrics().manifest_recuts,
        vlog_separated: s.vlog_values_separated,
        vlog_retired: s.vlog_segments_retired,
        range_deletes: s.range_deletes,
        checkpoints: s.checkpoints,
    };
    out
}

/// Pick crash points from a recorded trace: every metadata op (create,
/// sync, barrier, rename, delete, punch) plus its successor, plus evenly
/// sampled appends (exercised as *torn* appends). Returns
/// `(op_index, torn_keep)` pairs, evenly thinned to `max`.
pub(crate) fn select_crash_points(trace: &[OpRecord], max: usize) -> Vec<(u64, u64)> {
    let total = trace.len() as u64;
    let mut points: std::collections::BTreeMap<u64, u64> = std::collections::BTreeMap::new();
    for record in trace {
        if record.kind != OpKind::Append {
            points.entry(record.index).or_insert(0);
            if record.index + 1 < total {
                points.entry(record.index + 1).or_insert(0);
            }
        }
    }
    // Torn-append sampling: every `stride`-th append crashes mid-payload.
    let appends: Vec<&OpRecord> = trace
        .iter()
        .filter(|r| r.kind == OpKind::Append && r.bytes >= 2)
        .collect();
    let stride = (appends.len() / (max / 4).max(1)).max(1);
    for record in appends.iter().step_by(stride) {
        points.entry(record.index).or_insert(record.bytes / 2);
    }
    let points: Vec<(u64, u64)> = points.into_iter().collect();
    if points.len() > max {
        // Thin evenly so coverage still spans the whole trace.
        let len = points.len();
        (0..max).map(|i| points[i * len / max]).collect()
    } else {
        points
    }
}

/// Open the recovered database and check invariants I1–I5 (plus C1 when a
/// checkpoint was attempted) against the replay's model, appending any
/// violation to `violations`.
fn check_invariants(
    env: &FaultEnv,
    opts: &Options,
    model: &WorkloadOutcome,
    label: &str,
    violations: &mut Vec<String>,
) {
    let arc_env: Arc<dyn Env> = Arc::new(env.clone());

    // C1 first, so a wedged source database cannot mask checkpoint damage:
    // an acked checkpoint must open and equal the pinned snapshot; an
    // unacked one must either have no CURRENT (ignorable garbage, never
    // opened — `Db::open` would create a fresh database there) or open
    // cleanly as the complete image whose ack simply never returned.
    if model.ckpt_acked || env.file_exists("ckpt/CURRENT") {
        match Db::open(Arc::clone(&arc_env), "ckpt", opts.clone()) {
            Ok(copy) => {
                if let Err(e) = verify_db(&copy) {
                    violations.push(format!("{label}: C1 checkpoint integrity walk failed: {e}"));
                }
                match (full_scan(&copy), &model.ckpt_expected) {
                    (Ok(scan), Some(expected)) if &scan != expected => {
                        violations.push(format!(
                            "{label}: C1 checkpoint diverged from pinned snapshot: \
                             {} vs {} entries",
                            scan.len(),
                            expected.len()
                        ));
                    }
                    (Err(e), _) => {
                        violations.push(format!("{label}: C1 checkpoint scan failed: {e}"));
                    }
                    _ => {}
                }
                let _ = copy.close();
            }
            Err(e) => violations.push(format!("{label}: C1 checkpoint failed to open: {e}")),
        }
    }

    let db = match Db::open(Arc::clone(&arc_env), "db", opts.clone()) {
        Ok(db) => db,
        Err(e) => {
            violations.push(format!("{label}: recovery failed to open: {e}"));
            return;
        }
    };

    // I3: MANIFEST references only present, checksum-clean data.
    if let Err(e) = verify_db(&db) {
        violations.push(format!("{label}: I3 integrity walk failed: {e}"));
    }

    // I1 + I2 per pair.
    for (p, state) in model.pairs.iter().enumerate() {
        let (ka, kb) = pair_keys(p);
        let va = db.get(ka.as_bytes());
        let vb = db.get(kb.as_bytes());
        let (va, vb) = match (va, vb) {
            (Ok(a), Ok(b)) => (a, b),
            (a, b) => {
                violations.push(format!("{label}: pair {p} reads failed: {a:?} / {b:?}"));
                continue;
            }
        };
        if va != vb {
            violations.push(format!(
                "{label}: I2 torn batch visible for pair {p}: {:?} vs {:?}",
                va.as_deref().map(String::from_utf8_lossy),
                vb.as_deref().map(String::from_utf8_lossy),
            ));
            continue;
        }
        let recovered = va.as_deref().and_then(value_round);
        match (state.durable_floor, recovered) {
            (Some(floor), None) => violations.push(format!(
                "{label}: I1 pair {p} lost: durable through round {floor}, found nothing"
            )),
            (Some(floor), Some(r)) if r < floor => violations.push(format!(
                "{label}: I1 pair {p} rolled back: durable through round {floor}, found {r}"
            )),
            _ => {}
        }
        if let Some(r) = recovered {
            // Sanity: recovery can surface an unacked write (it may have
            // reached the WAL) but never one that was not even attempted.
            let attempted = state.attempted.unwrap_or(0);
            if state.attempted.is_none() || r > attempted {
                violations.push(format!(
                    "{label}: pair {p} contains round {r} beyond attempts ({:?})",
                    state.attempted
                ));
            }
        }
    }

    // I5: range-tombstone visibility at the recorded durability
    // boundaries. Uncovered keys are never deleted, so once their writes
    // were durable they must read back exactly; covered keys must be gone
    // once the tombstone was durable (unless durably reborn) and intact
    // while it was never attempted. Between attempt and durability the
    // unsynced tombstone may or may not have reached the WAL, so only the
    // *value* is pinned, not presence.
    if model.rd >= RdPhase::WritesDurable {
        for i in (0..RD_DEL_BEGIN).chain(RD_DEL_END..RD_KEYS) {
            match db.get(rd_key(i).as_bytes()) {
                Ok(Some(v)) if v == rd_alive(i) => {}
                Ok(v) => violations.push(format!(
                    "{label}: I5 uncovered key rd{i:04} corrupted: {:?}",
                    v.as_deref().map(String::from_utf8_lossy)
                )),
                Err(e) => violations.push(format!("{label}: I5 read rd{i:04} failed: {e}")),
            }
        }
        for i in RD_DEL_BEGIN..RD_DEL_END {
            let reborn = (RD_REBIRTH_BEGIN..RD_REBIRTH_END).contains(&i);
            let got = match db.get(rd_key(i).as_bytes()) {
                Ok(got) => got,
                Err(e) => {
                    violations.push(format!("{label}: I5 read rd{i:04} failed: {e}"));
                    continue;
                }
            };
            let bad = match model.rd {
                RdPhase::NotStarted => false,
                // Tombstone never issued: the durable write must be there.
                RdPhase::WritesDurable => got.as_deref() != Some(&rd_alive(i)[..]),
                // Issued but not durable: absent or the old value.
                RdPhase::DeleteAttempted | RdPhase::DeleteAcked => {
                    got.is_some() && got.as_deref() != Some(&rd_alive(i)[..])
                }
                // Tombstone durable, rebirth not: absent, or the reborn
                // value if its unsynced write happened to survive.
                RdPhase::DeleteDurable | RdPhase::RebirthAttempted => {
                    got.is_some() && !(reborn && got.as_deref() == Some(&rd_reborn(i)[..]))
                }
                // Rebirth durable: reborn keys back, the rest still gone.
                RdPhase::RebirthDurable => {
                    if reborn {
                        got.as_deref() != Some(&rd_reborn(i)[..])
                    } else {
                        got.is_some()
                    }
                }
            };
            if bad {
                violations.push(format!(
                    "{label}: I5 covered key rd{i:04} wrong at phase {:?}: {:?}",
                    model.rd,
                    got.as_deref().map(String::from_utf8_lossy)
                ));
            }
        }
    }

    // I4: a second recovery must see the identical key space.
    let scan1 = match full_scan(&db) {
        Ok(scan) => scan,
        Err(e) => {
            violations.push(format!("{label}: scan after recovery failed: {e}"));
            let _ = db.close();
            return;
        }
    };
    if let Err(e) = db.close() {
        violations.push(format!("{label}: close after recovery failed: {e}"));
        return;
    }
    match Db::open(arc_env, "db", opts.clone()) {
        Ok(db2) => {
            match full_scan(&db2) {
                Ok(scan2) if scan2 == scan1 => {}
                Ok(scan2) => violations.push(format!(
                    "{label}: I4 re-recovery diverged: {} vs {} entries",
                    scan1.len(),
                    scan2.len()
                )),
                Err(e) => violations.push(format!("{label}: I4 re-scan failed: {e}")),
            }
            let _ = db2.close();
        }
        Err(e) => violations.push(format!("{label}: I4 re-open failed: {e}")),
    }
}

/// [`check_invariants`], but a panic anywhere in recovery (e.g. a violated
/// `debug_assert` while rebuilding a version) is itself recorded as an
/// invariant violation instead of killing the sweep.
fn checked_invariants(
    env: &FaultEnv,
    opts: &Options,
    model: &WorkloadOutcome,
    label: &str,
    violations: &mut Vec<String>,
) {
    let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        let mut local = Vec::new();
        check_invariants(env, opts, model, label, &mut local);
        local
    }));
    match result {
        Ok(local) => violations.extend(local),
        Err(payload) => {
            let msg = payload
                .downcast_ref::<String>()
                .map(String::as_str)
                .or_else(|| payload.downcast_ref::<&str>().copied())
                .unwrap_or("opaque panic");
            violations.push(format!("{label}: recovery panicked: {msg}"));
        }
    }
}

fn full_scan(db: &Db) -> Result<Vec<(Vec<u8>, Vec<u8>)>> {
    let mut iter = db.iter()?;
    iter.seek_to_first()?;
    let mut out = Vec::new();
    while iter.valid() {
        out.push((iter.key().to_vec(), iter.value().to_vec()));
        iter.next()?;
    }
    Ok(out)
}

/// Record the workload once, then sweep crash points and `EIO` injections.
///
/// Deterministic for a given [`SweepConfig`]: the workload is fixed, torn
/// tails derive from `cfg.seed`, and the invariants hold at *any* op cut,
/// so background-thread interleaving cannot flip a verdict.
///
/// # Errors
///
/// Returns an error only if the harness itself cannot run (e.g. the record
/// run fails outright); invariant violations are reported in
/// [`SweepOutcome::violations`].
pub fn run_crash_sweep(cfg: &SweepConfig) -> Result<SweepOutcome> {
    // Compact eagerly and keep level 1 tiny so the short workload reaches
    // group compaction, settled promotion (L1 → L2 moves), and
    // hole-punching — every barrier in the §9 ordering contract shows up
    // in the recorded trace. In vlog mode every pair value (~90 B) and
    // hole value (160 B) crosses the separation threshold and tiny
    // segments force rotations, so the rotate/seal windows are covered.
    let opts = sweep_options(cfg);

    // Phase 1: record.
    let env = FaultEnv::over_mem();
    env.start_recording();
    let record = run_workload(&env, &opts, true, cfg.checkpoint);
    let trace = env.stop_recording();
    if record.errors > 0 {
        return Err(bolt_common::Error::io(format!(
            "record run saw {} unexpected errors",
            record.errors
        )));
    }
    if cfg.vlog && (record.stats.vlog_separated == 0 || record.stats.vlog_retired == 0) {
        return Err(bolt_common::Error::io(format!(
            "vlog sweep did not exercise value separation \
             ({} separated, {} segments retired)",
            record.stats.vlog_separated, record.stats.vlog_retired
        )));
    }
    if record.rd != RdPhase::RebirthDurable || record.stats.range_deletes == 0 {
        return Err(bolt_common::Error::io(format!(
            "sweep did not exercise the range-delete phase \
             (reached {:?}, {} tombstones)",
            record.rd, record.stats.range_deletes
        )));
    }
    if cfg.checkpoint && (!record.ckpt_acked || record.stats.checkpoints == 0) {
        return Err(bolt_common::Error::io(
            "checkpoint sweep did not complete its checkpoint".to_string(),
        ));
    }
    let ops_recorded = env.op_count();
    let syncs_recorded = env.sync_count();
    let phases = env.markers();

    // Phase 2: crash-point sweep. Every op inside the re-cut window is
    // force-included after thinning (appends as torn appends): the torn old
    // MANIFEST, the fresh-but-unswung CURRENT, and the not-yet-re-appended
    // edit are exactly the intermediate states O5 must keep I1-I4 through.
    let mut points = select_crash_points(&trace, cfg.max_crash_points);
    if let Some((arm, done)) = marker_window(&phases, "recut-arm", "recut-done") {
        points = merge_window(points, &trace, arm, done);
    }
    // Checkpoint mode: every op between `ckpt-arm` and `ckpt-done` is a
    // forced crash point — each link, the manifest write, the CURRENT
    // staging and the publishing rename must leave garbage or a database.
    if let Some((arm, done)) = marker_window(&phases, "ckpt-arm", "ckpt-done") {
        points = merge_window(points, &trace, arm, done);
    }
    // Vlog mode: force every value-log metadata op (create, sync/barrier,
    // punch, delete) plus its successor into the point set — these bound
    // the append-barrier-ack and punch windows of the §14 crash contract —
    // and tear a sample of the (far more numerous) value appends.
    if cfg.vlog {
        let mut merged: std::collections::BTreeMap<u64, u64> = points.iter().copied().collect();
        let total = trace.len() as u64;
        let vlog_appends: Vec<&OpRecord> = trace
            .iter()
            .filter(|r| r.path.ends_with(".vlog") && r.kind == OpKind::Append && r.bytes >= 2)
            .collect();
        let stride = (vlog_appends.len() / 16).max(1);
        for record in vlog_appends.iter().step_by(stride) {
            merged.entry(record.index).or_insert(record.bytes / 2);
        }
        for record in &trace {
            if record.path.ends_with(".vlog") && record.kind != OpKind::Append {
                merged.entry(record.index).or_insert(0);
                if record.index + 1 < total {
                    merged.entry(record.index + 1).or_insert(0);
                }
            }
        }
        points = merged.into_iter().collect();
    }
    let mut violations = Vec::new();
    let mut crash_points = Vec::new();
    for &(k, keep) in &points {
        let env = FaultEnv::over_mem();
        let plan = if keep > 0 {
            FaultPlan::new().torn_crash_at_op(k, keep)
        } else {
            FaultPlan::new().crash_at_op(k)
        };
        env.set_plan(plan);
        let replay = run_workload(&env, &opts, false, cfg.checkpoint);
        let label = format!("crash@op{k}{}", if keep > 0 { " (torn)" } else { "" });
        env.crash_inner(CrashConfig::TornTail {
            seed: cfg.seed ^ k.wrapping_mul(0x9E37_79B9),
        });
        env.reset();
        checked_invariants(&env, &opts, &replay, &label, &mut violations);
        crash_points.push(k);
    }

    // Phase 3: EIO-on-sync sweep — injected errors must never be swallowed.
    let mut eio_points = Vec::new();
    let eio_count = (syncs_recorded as usize).min(cfg.max_eio_points.max(1));
    for i in 0..eio_count {
        let n = i as u64 * syncs_recorded / eio_count as u64;
        let env = FaultEnv::over_mem();
        env.set_plan(FaultPlan::new().fail_sync(n));
        let replay = run_workload(&env, &opts, false, cfg.checkpoint);
        let label = format!("eio@sync{n}");
        // Every injected fault must be accounted for: either a caller saw
        // an error, or a self-healing re-cut absorbed it (the workload's
        // own armed MANIFEST EIO is always absorbed when healthy).
        let injected = env.faults_injected();
        if injected > 0 && replay.errors == 0 && replay.stats.recuts < injected {
            violations.push(format!(
                "{label}: injected EIO was swallowed ({} re-cut(s) for {injected} fault(s), \
                 no caller observed an error)",
                replay.stats.recuts
            ));
        }
        // The EIO may have poisoned the database; a crash right after must
        // still recover to a consistent state.
        env.crash_inner(CrashConfig::Clean);
        env.reset();
        checked_invariants(&env, &opts, &replay, &label, &mut violations);
        eio_points.push(n);
    }

    // Phase 4: double-crash sweep — crash the workload at op `k`, then
    // crash *recovery itself* at op `j` of the `Db::open` replay, and
    // require the third open to restore a consistent state. Each `(k, j)`
    // pair rebuilds the post-first-crash filesystem from scratch so the
    // second crash always lands on identical bytes.
    let mut double_crash_points = Vec::new();
    if cfg.max_double_crash_first > 0 && cfg.max_double_crash_second > 0 && !points.is_empty() {
        let stride = (points.len() / cfg.max_double_crash_first).max(1);
        for &(k, keep) in points
            .iter()
            .step_by(stride)
            .take(cfg.max_double_crash_first)
        {
            // Probe: how many ops does recovering from this crash perform?
            let (env, _) = build_first_crash(cfg, &opts, k, keep);
            attempt_open(&env, &opts);
            let recovery_ops = env.op_count();
            if recovery_ops == 0 {
                continue;
            }
            let seconds = cfg.max_double_crash_second.min(recovery_ops as usize);
            for i in 0..seconds {
                let j = i as u64 * recovery_ops / seconds as u64;
                let (env, replay) = build_first_crash(cfg, &opts, k, keep);
                env.set_plan(FaultPlan::new().crash_at_op(j));
                let label = format!("crash@op{k}+recovery-crash@op{j}");
                if !attempt_open(&env, &opts) {
                    violations.push(format!("{label}: interrupted recovery panicked"));
                }
                env.crash_inner(CrashConfig::TornTail {
                    seed: cfg.seed ^ k.wrapping_mul(0x9E37_79B9) ^ j.wrapping_mul(0x517C_C1B7),
                });
                env.reset();
                checked_invariants(&env, &opts, &replay, &label, &mut violations);
                double_crash_points.push((k, j));
            }
        }
    }

    Ok(SweepOutcome {
        policy: cfg.policy,
        ops_recorded,
        syncs_recorded,
        phases,
        crash_points,
        eio_points,
        double_crash_points,
        coverage: record.stats,
        violations,
    })
}

/// The `[arm, done)` op-index window bounded by two phase markers from the
/// record run, if both were reached.
fn marker_window(phases: &[(u64, String)], arm: &str, done: &str) -> Option<(u64, u64)> {
    let arm = phases.iter().find(|(_, l)| l == arm)?.0;
    let done = phases.iter().find(|(_, l)| l == done)?.0;
    Some((arm, done))
}

/// Force every op inside `[arm, done)` into the crash-point set (appends
/// as torn appends), keeping the set sorted and deduplicated.
fn merge_window(
    points: Vec<(u64, u64)>,
    trace: &[OpRecord],
    arm: u64,
    done: u64,
) -> Vec<(u64, u64)> {
    let mut merged: std::collections::BTreeMap<u64, u64> = points.into_iter().collect();
    for record in trace {
        if record.index >= arm && record.index < done {
            if record.kind == OpKind::Append {
                merged.entry(record.index).or_insert(record.bytes / 2);
            } else {
                merged.entry(record.index).or_insert(0);
            }
        }
    }
    merged.into_iter().collect()
}

/// Run the workload to its first crash at op `k` (torn-keeping `keep`
/// append bytes), power-cycle, and return the env holding the surviving
/// filesystem plus the workload's acked/durable model.
fn build_first_crash(
    cfg: &SweepConfig,
    opts: &Options,
    k: u64,
    keep: u64,
) -> (FaultEnv, WorkloadOutcome) {
    let env = FaultEnv::over_mem();
    let plan = if keep > 0 {
        FaultPlan::new().torn_crash_at_op(k, keep)
    } else {
        FaultPlan::new().crash_at_op(k)
    };
    env.set_plan(plan);
    let replay = run_workload(&env, opts, false, cfg.checkpoint);
    env.crash_inner(CrashConfig::TornTail {
        seed: cfg.seed ^ k.wrapping_mul(0x9E37_79B9),
    });
    env.reset();
    (env, replay)
}

/// Open (and close) the database, tolerating errors — the plan may crash
/// the env mid-recovery. Returns `false` if the attempt panicked.
fn attempt_open(env: &FaultEnv, opts: &Options) -> bool {
    let arc_env: Arc<dyn Env> = Arc::new(env.clone());
    std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        if let Ok(db) = Db::open(arc_env, "db", opts.clone()) {
            let _ = db.close();
        }
    }))
    .is_ok()
}

/// The options every sweep run uses, derived from the config.
fn sweep_options(cfg: &SweepConfig) -> Options {
    let mut opts = Options::bolt().scaled(1.0 / 256.0);
    opts.level0_compaction_trigger = 2;
    opts.level1_max_bytes = 12 << 10;
    opts.compaction_policy = cfg.policy;
    if cfg.policy != CompactionPolicyKind::Leveled {
        opts.size_tiered_min_threshold = 2;
    }
    if cfg.vlog {
        opts.value_separation_threshold = Some(64);
        opts.vlog_segment_bytes = 4 << 10;
    }
    opts
}

/// Render a sweep outcome for the CLI.
pub fn render_report(outcome: &SweepOutcome) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    writeln!(
        out,
        "recorded {} ops ({} syncs/barriers) under policy {} across phases:",
        outcome.ops_recorded,
        outcome.syncs_recorded,
        outcome.policy.as_str()
    )
    .expect("write");
    for (at, label) in &outcome.phases {
        writeln!(out, "  op {at:>5}  {label}").expect("write");
    }
    let c = outcome.coverage;
    writeln!(
        out,
        "coverage: {} flushes, {} compactions, {} settled moves, {} holes punched, \
         {} manifest re-cuts, {} range deletes",
        c.flushes, c.compactions, c.settled_moves, c.holes_punched, c.recuts, c.range_deletes
    )
    .expect("write");
    if c.checkpoints > 0 {
        writeln!(
            out,
            "checkpoint coverage: {} online checkpoint(s)",
            c.checkpoints
        )
        .expect("write");
    }
    if c.vlog_separated > 0 {
        writeln!(
            out,
            "vlog coverage: {} values separated, {} segments retired",
            c.vlog_separated, c.vlog_retired
        )
        .expect("write");
    }
    writeln!(
        out,
        "swept {} crash points + {} EIO points + {} double-crash pairs",
        outcome.crash_points.len(),
        outcome.eio_points.len(),
        outcome.double_crash_points.len()
    )
    .expect("write");
    if outcome.violations.is_empty() {
        writeln!(out, "ok: all recovery invariants held").expect("write");
    } else {
        writeln!(out, "{} VIOLATION(S):", outcome.violations.len()).expect("write");
        for v in &outcome.violations {
            writeln!(out, "  {v}").expect("write");
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The full workload followed by a clean power-cycle must satisfy every
    /// invariant — in particular I5: a durable range tombstone must not let
    /// covered keys resurface after recovery, no matter how compaction
    /// fragmented it across output tables.
    #[test]
    fn workload_invariants_hold_after_clean_powercycle() {
        let cfg = SweepConfig {
            checkpoint: true,
            ..SweepConfig::default()
        };
        let opts = sweep_options(&cfg);
        let env = FaultEnv::over_mem();
        let record = run_workload(&env, &opts, false, cfg.checkpoint);
        assert_eq!(record.errors, 0, "record run saw errors");
        assert_eq!(record.rd, RdPhase::RebirthDurable);
        assert!(record.ckpt_acked);
        // The live scan the checkpoint pinned must already honour the
        // tombstone: covered, un-reborn keys are absent.
        let expected = record.ckpt_expected.as_ref().expect("scan captured");
        for i in RD_DEL_BEGIN..RD_DEL_END {
            if (RD_REBIRTH_BEGIN..RD_REBIRTH_END).contains(&i) {
                continue;
            }
            assert!(
                !expected.iter().any(|(k, _)| k == rd_key(i).as_bytes()),
                "live scan resurrected covered key rd{i:04}"
            );
        }
        env.crash_inner(CrashConfig::Clean);
        env.reset();
        let mut violations = Vec::new();
        check_invariants(&env, &opts, &record, "clean-powercycle", &mut violations);
        assert!(violations.is_empty(), "{violations:#?}");
    }
}

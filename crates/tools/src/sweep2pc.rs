//! Cross-shard two-phase-commit crash-point sweep.
//!
//! The single-engine sweep ([`crate::run_crash_sweep`]) proves I1–I4 for
//! one `Db`. This sweep proves the *cross-shard* half of the story: a
//! [`ShardedDb`] batch spanning shards must recover **all-or-nothing** no
//! matter where a crash lands inside the 2PC window — after the first
//! shard's synced prepare, between prepares, around the coordinator's
//! `TXNLOG` decide record (the commit point), or mid-apply.
//!
//! The workload issues rounds of cross-shard `write_batch` calls, each
//! rewriting one *group* of keys that provably spans at least two shards
//! (the key set is derived from the router so every batch takes the 2PC
//! path). The record run brackets every 2PC window with [`FaultEnv`]
//! markers; the sweep then force-includes **every op inside every window**
//! as a crash point (appends as torn appends) on top of the usual sampled
//! points. After each crash the sharded database is reopened and checked:
//!
//! * **A1 — atomicity**: all keys of a group carry the same round value
//!   (a half-applied cross-shard batch is the one outcome 2PC exists to
//!   prevent).
//! * **A2 — acked durability**: an acknowledged cross-shard batch (synced
//!   prepares + synced decide) survives recovery.
//! * **A3 — shard integrity**: every shard passes the full [`verify_db`]
//!   walk.
//! * **A4 — idempotent re-recovery**: a second reopen yields the identical
//!   merged key space.

use std::sync::Arc;

use bolt_common::Result;
use bolt_core::{Options, WriteBatch};
use bolt_env::{CrashConfig, Env, FaultEnv, FaultPlan, OpKind};
use bolt_sharded::{Router, ShardedDb};

use crate::sweep::select_crash_points;
use crate::verify_db;

/// Key groups rewritten as one cross-shard batch each round.
const GROUPS: usize = 4;
/// Keys per group (spread across at least two shards by construction).
const KEYS_PER_GROUP: usize = 5;
/// Rounds; every group is rewritten each round.
const ROUNDS: u32 = 3;
/// Single-key filler writes per round, advancing WALs and memtables so
/// the prepare-pinning logic sees log rotation underneath staged slices.
const FILLER_PER_ROUND: u32 = 40;

/// Sweep tuning knobs.
#[derive(Debug, Clone)]
pub struct Sharded2pcConfig {
    /// Base seed for torn-tail crash randomness.
    pub seed: u64,
    /// Shard count for the swept database.
    pub shards: usize,
    /// Upper bound on *sampled* crash points outside the 2PC windows.
    pub max_crash_points: usize,
    /// Upper bound on force-included points inside the 2PC windows (the
    /// windows are small; the default covers them exhaustively).
    pub max_window_points: usize,
}

impl Default for Sharded2pcConfig {
    fn default() -> Self {
        Sharded2pcConfig {
            seed: 0x2B0C,
            shards: 3,
            max_crash_points: 36,
            max_window_points: 144,
        }
    }
}

/// Everything a sharded sweep learned.
#[derive(Debug, Clone)]
pub struct Sharded2pcOutcome {
    /// Ops counted in the record run.
    pub ops_recorded: u64,
    /// Sync/ordering barriers counted in the record run.
    pub syncs_recorded: u64,
    /// `[arm, done)` op-index windows of every recorded 2PC commit.
    pub txn_windows: Vec<(u64, u64)>,
    /// Crash points actually exercised (op indices).
    pub crash_points: Vec<u64>,
    /// How many exercised points fell inside a 2PC window.
    pub window_points: usize,
    /// Cross-shard transactions issued by the record run.
    pub cross_shard_txns: u64,
    /// Human-readable invariant violations (empty on a clean sweep).
    pub violations: Vec<String>,
}

/// What the workload was told about one group's batches.
#[derive(Debug, Clone, Copy, Default)]
struct GroupState {
    /// Highest round whose `write_batch` was issued (acked or not).
    attempted: Option<u32>,
    /// Highest round acknowledged. Acked cross-shard batches are durable:
    /// every prepare and the decide record were synced before the ack.
    acked: Option<u32>,
}

struct WorkloadOutcome {
    groups: Vec<GroupState>,
    errors: usize,
}

/// The keys of group `g`, chosen so they provably span at least two
/// shards under `router` — every batch must take the 2PC path, never the
/// single-shard fast path.
fn group_keys(router: &Router, g: usize) -> Vec<String> {
    let mut keys: Vec<String> = (0..KEYS_PER_GROUP)
        .map(|t| format!("g{g:02}x{t:03}"))
        .collect();
    let first = router.route(keys[0].as_bytes());
    if keys.iter().all(|k| router.route(k.as_bytes()) == first) {
        for t in KEYS_PER_GROUP..1000 {
            let candidate = format!("g{g:02}x{t:03}");
            if router.route(candidate.as_bytes()) != first {
                let last = keys.len() - 1;
                keys[last] = candidate;
                break;
            }
        }
    }
    keys
}

fn group_value(round: u32, g: usize) -> String {
    // Round is recoverable from the value; padding pushes enough bytes
    // through the memtables that flushes actually happen.
    format!("r{round:04}-g{g:02}-{}", "v".repeat(64))
}

fn value_round(value: &[u8]) -> Option<u32> {
    let s = std::str::from_utf8(value).ok()?;
    s.strip_prefix('r')?.get(..4)?.parse().ok()
}

/// Run the fixed sharded workload over `env`. I/O failures are tolerated
/// and counted; once the env reports a crash the workload stops early.
fn run_workload(env: &FaultEnv, opts: &Options, router: &Router, marks: bool) -> WorkloadOutcome {
    let mut out = WorkloadOutcome {
        groups: vec![GroupState::default(); GROUPS],
        errors: 0,
    };
    let arc_env: Arc<dyn Env> = Arc::new(env.clone());
    let db = match ShardedDb::open(arc_env, "db", opts.clone(), router.clone()) {
        Ok(db) => db,
        Err(_) => {
            out.errors += 1;
            return out;
        }
    };
    'work: {
        for round in 0..ROUNDS {
            for g in 0..GROUPS {
                let mut batch = WriteBatch::new();
                let value = group_value(round, g);
                for key in group_keys(router, g) {
                    batch.put(key.as_bytes(), value.as_bytes());
                }
                if marks {
                    env.mark(&format!("txn-r{round}g{g}-arm"));
                }
                out.groups[g].attempted = Some(round);
                match db.write_batch(batch) {
                    Ok(()) => {
                        out.groups[g].acked = Some(round);
                        if marks {
                            env.mark(&format!("txn-r{round}g{g}-done"));
                        }
                    }
                    Err(_) => {
                        out.errors += 1;
                        if env.crashed() {
                            break 'work;
                        }
                    }
                }
            }
            for i in 0..FILLER_PER_ROUND {
                let key = format!("f{:02}key{i:04}", round);
                if db.put(key.as_bytes(), &[b'z'; 100]).is_err() {
                    out.errors += 1;
                    if env.crashed() {
                        break 'work;
                    }
                }
            }
            if db.flush().is_err() {
                out.errors += 1;
                if env.crashed() {
                    break 'work;
                }
            }
        }
    }
    if db.close().is_err() {
        out.errors += 1;
    }
    out
}

/// Every `[arm, done)` 2PC window from the recorded phase markers.
fn txn_windows(phases: &[(u64, String)]) -> Vec<(u64, u64)> {
    let mut windows = Vec::new();
    for (at, label) in phases {
        if let Some(stem) = label.strip_suffix("-arm") {
            let done = format!("{stem}-done");
            if let Some((end, _)) = phases.iter().find(|(_, l)| *l == done) {
                windows.push((*at, *end));
            }
        }
    }
    windows
}

/// Reopen the sharded database after a crash and check A1–A4 against the
/// replay's `groups` model, appending any violation to `violations`.
fn check_invariants(
    env: &FaultEnv,
    opts: &Options,
    router: &Router,
    groups: &[GroupState],
    label: &str,
    violations: &mut Vec<String>,
) {
    let arc_env: Arc<dyn Env> = Arc::new(env.clone());
    let db = match ShardedDb::open(Arc::clone(&arc_env), "db", opts.clone(), router.clone()) {
        Ok(db) => db,
        Err(e) => {
            violations.push(format!("{label}: recovery failed to open: {e}"));
            return;
        }
    };

    // A3: every shard passes the integrity walk.
    for i in 0..db.shard_count() {
        if let Err(e) = verify_db(db.shard(i)) {
            violations.push(format!("{label}: A3 shard {i} integrity walk failed: {e}"));
        }
    }

    // A1 + A2 per group.
    'groups: for (g, state) in groups.iter().enumerate() {
        let mut rounds: Vec<Option<u32>> = Vec::with_capacity(KEYS_PER_GROUP);
        for key in group_keys(router, g) {
            match db.get(key.as_bytes()) {
                Ok(v) => rounds.push(v.as_deref().and_then(value_round)),
                Err(e) => {
                    violations.push(format!("{label}: group {g} read failed: {e}"));
                    continue 'groups;
                }
            }
        }
        if rounds.windows(2).any(|w| w[0] != w[1]) {
            violations.push(format!(
                "{label}: A1 half-applied cross-shard batch in group {g}: {rounds:?}"
            ));
            continue;
        }
        let recovered = rounds[0];
        match (state.acked, recovered) {
            (Some(acked), None) => violations.push(format!(
                "{label}: A2 group {g} lost: acked through round {acked}, found nothing"
            )),
            (Some(acked), Some(r)) if r < acked => violations.push(format!(
                "{label}: A2 group {g} rolled back: acked through round {acked}, found {r}"
            )),
            _ => {}
        }
        if let Some(r) = recovered {
            // Recovery may surface an unacked batch (the decide record may
            // have hit the log) but never one that was not even attempted.
            if state.attempted.is_none() || r > state.attempted.unwrap_or(0) {
                violations.push(format!(
                    "{label}: group {g} contains round {r} beyond attempts ({:?})",
                    state.attempted
                ));
            }
        }
    }

    // A4: a second recovery must see the identical merged key space.
    let scan1 = match full_scan(&db) {
        Ok(scan) => scan,
        Err(e) => {
            violations.push(format!("{label}: scan after recovery failed: {e}"));
            let _ = db.close();
            return;
        }
    };
    if let Err(e) = db.close() {
        violations.push(format!("{label}: close after recovery failed: {e}"));
        return;
    }
    match ShardedDb::open(arc_env, "db", opts.clone(), router.clone()) {
        Ok(db2) => {
            match full_scan(&db2) {
                Ok(scan2) if scan2 == scan1 => {}
                Ok(scan2) => violations.push(format!(
                    "{label}: A4 re-recovery diverged: {} vs {} entries",
                    scan1.len(),
                    scan2.len()
                )),
                Err(e) => violations.push(format!("{label}: A4 re-scan failed: {e}")),
            }
            let _ = db2.close();
        }
        Err(e) => violations.push(format!("{label}: A4 re-open failed: {e}")),
    }
}

/// [`check_invariants`], with a panic anywhere in recovery recorded as a
/// violation instead of killing the sweep.
fn checked_invariants(
    env: &FaultEnv,
    opts: &Options,
    router: &Router,
    groups: &[GroupState],
    label: &str,
    violations: &mut Vec<String>,
) {
    let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        let mut local = Vec::new();
        check_invariants(env, opts, router, groups, label, &mut local);
        local
    }));
    match result {
        Ok(local) => violations.extend(local),
        Err(payload) => {
            let msg = payload
                .downcast_ref::<String>()
                .map(String::as_str)
                .or_else(|| payload.downcast_ref::<&str>().copied())
                .unwrap_or("opaque panic");
            violations.push(format!("{label}: recovery panicked: {msg}"));
        }
    }
}

fn full_scan(db: &ShardedDb) -> Result<Vec<(Vec<u8>, Vec<u8>)>> {
    let mut iter = db.iter()?;
    iter.seek_to_first()?;
    let mut out = Vec::new();
    while iter.valid() {
        out.push((iter.key().to_vec(), iter.value().to_vec()));
        iter.next()?;
    }
    Ok(out)
}

/// Record the sharded workload once, then crash at every op inside every
/// 2PC window (force-included, appends torn) plus sampled points across
/// the rest of the trace. Deterministic for a given [`Sharded2pcConfig`].
///
/// # Errors
///
/// Returns an error only if the harness itself cannot run; invariant
/// violations are reported in [`Sharded2pcOutcome::violations`].
pub fn run_sharded_crash_sweep(cfg: &Sharded2pcConfig) -> Result<Sharded2pcOutcome> {
    let opts = Options::bolt().scaled(1.0 / 256.0);
    let router = Router::hash(cfg.shards)?;

    // Phase 1: record.
    let env = FaultEnv::over_mem();
    env.start_recording();
    let record = run_workload(&env, &opts, &router, true);
    let trace = env.stop_recording();
    if record.errors > 0 {
        return Err(bolt_common::Error::io(format!(
            "record run saw {} unexpected errors",
            record.errors
        )));
    }
    let ops_recorded = env.op_count();
    let syncs_recorded = env.sync_count();
    let windows = txn_windows(&env.markers());
    if windows.is_empty() {
        return Err(bolt_common::Error::io(
            "record run produced no 2PC windows".to_string(),
        ));
    }

    // Phase 2: pick points — sampled baseline, then every op inside every
    // 2PC window force-included (up to `max_window_points`, thinned evenly
    // if the windows are larger).
    let mut merged: std::collections::BTreeMap<u64, u64> =
        select_crash_points(&trace, cfg.max_crash_points)
            .into_iter()
            .collect();
    let in_window = |i: u64| windows.iter().any(|&(arm, done)| i >= arm && i < done);
    let window_ops: Vec<(u64, u64)> = trace
        .iter()
        .filter(|r| in_window(r.index))
        .map(|r| {
            let keep = if r.kind == OpKind::Append && r.bytes >= 2 {
                r.bytes / 2
            } else {
                0
            };
            (r.index, keep)
        })
        .collect();
    let forced: Vec<(u64, u64)> = if window_ops.len() > cfg.max_window_points {
        let len = window_ops.len();
        (0..cfg.max_window_points)
            .map(|i| window_ops[i * len / cfg.max_window_points])
            .collect()
    } else {
        window_ops
    };
    for &(k, keep) in &forced {
        merged.insert(k, keep);
    }

    // Phase 3: sweep.
    let mut violations = Vec::new();
    let mut crash_points = Vec::new();
    let mut window_points = 0;
    for (&k, &keep) in &merged {
        let env = FaultEnv::over_mem();
        let plan = if keep > 0 {
            FaultPlan::new().torn_crash_at_op(k, keep)
        } else {
            FaultPlan::new().crash_at_op(k)
        };
        env.set_plan(plan);
        let replay = run_workload(&env, &opts, &router, false);
        let label = format!(
            "2pc-crash@op{k}{}{}",
            if keep > 0 { " (torn)" } else { "" },
            if in_window(k) { " [window]" } else { "" }
        );
        env.crash_inner(CrashConfig::TornTail {
            seed: cfg.seed ^ k.wrapping_mul(0x9E37_79B9),
        });
        env.reset();
        checked_invariants(
            &env,
            &opts,
            &router,
            &replay.groups,
            &label,
            &mut violations,
        );
        crash_points.push(k);
        if in_window(k) {
            window_points += 1;
        }
    }

    Ok(Sharded2pcOutcome {
        ops_recorded,
        syncs_recorded,
        txn_windows: windows,
        crash_points,
        window_points,
        cross_shard_txns: (GROUPS as u64) * u64::from(ROUNDS),
        violations,
    })
}

/// Render a sharded sweep outcome for the CLI.
pub fn render_sharded_report(outcome: &Sharded2pcOutcome) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    writeln!(
        out,
        "recorded {} ops ({} syncs/barriers), {} cross-shard 2PC commits",
        outcome.ops_recorded, outcome.syncs_recorded, outcome.cross_shard_txns
    )
    .expect("write");
    for (arm, done) in &outcome.txn_windows {
        writeln!(out, "  2PC window: ops [{arm}, {done})").expect("write");
    }
    writeln!(
        out,
        "swept {} crash points ({} inside 2PC windows)",
        outcome.crash_points.len(),
        outcome.window_points
    )
    .expect("write");
    if outcome.violations.is_empty() {
        writeln!(out, "ok: every cross-shard batch recovered all-or-nothing").expect("write");
    } else {
        writeln!(out, "{} VIOLATION(S):", outcome.violations.len()).expect("write");
        for v in &outcome.violations {
            writeln!(out, "  {v}").expect("write");
        }
    }
    out
}

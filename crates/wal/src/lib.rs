//! # bolt-wal
//!
//! The write-ahead-log record format shared by the WAL and the MANIFEST
//! (both are "log files" in LevelDB terms).
//!
//! The format is LevelDB's `db/log_format.h`: the file is a sequence of
//! 32 KiB blocks; each block holds records framed as
//!
//! ```text
//! +---------+--------+------+----------------------+
//! | crc32c  | length | type |  payload             |
//! | 4 bytes | 2 B LE | 1 B  |  `length` bytes      |
//! +---------+--------+------+----------------------+
//! ```
//!
//! Payloads larger than the space left in a block are split into
//! FIRST/MIDDLE/LAST fragments; a block tail smaller than the 7-byte header
//! is zero-padded. The CRC covers the type byte plus payload and is stored
//! masked ([`bolt_common::crc32c::mask`]).
//!
//! [`LogReader`] is *torn-tail tolerant*: a truncated or checksum-corrupt
//! record is treated as end-of-log, which is exactly the recovery semantics
//! a crashed writer needs.

#![warn(missing_docs)]

use bolt_common::crc32c;
use bolt_common::events::{BarrierCause, BarrierScope};
use bolt_common::{Error, Result};
use bolt_env::{RandomAccessFile, WritableFile};

use std::sync::Arc;

/// Size of a log block.
pub const BLOCK_SIZE: usize = 32 * 1024;
/// Bytes of framing per record fragment.
pub const HEADER_SIZE: usize = 7;

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
enum RecordType {
    Full = 1,
    First = 2,
    Middle = 3,
    Last = 4,
}

impl RecordType {
    fn from_u8(v: u8) -> Option<RecordType> {
        match v {
            1 => Some(RecordType::Full),
            2 => Some(RecordType::First),
            3 => Some(RecordType::Middle),
            4 => Some(RecordType::Last),
            _ => None,
        }
    }
}

/// Appends framed records to a [`WritableFile`].
///
/// The writer tracks how many bytes have been made durable so that
/// [`LogWriter::sync`] is idempotent: a sync with no bytes appended since
/// the previous one is elided entirely. This is what lets a group-commit
/// leader answer several `sync`-requesting writers with a single barrier.
pub struct LogWriter {
    file: Box<dyn WritableFile>,
    block_offset: usize,
    /// File length as of the last completed [`LogWriter::sync`]. Starts at 0
    /// even for reopened files: durability of pre-existing bytes is unknown,
    /// so the first sync always reaches the device.
    synced_len: u64,
    /// Default [`BarrierCause`] for barriers issued by this writer when the
    /// calling thread has no explicit scope active (see
    /// [`LogWriter::set_barrier_cause`]).
    default_cause: Option<BarrierCause>,
    /// With `debug_locks`: a tracked-lock name that must not be held by the
    /// thread performing I/O on this writer (lint rule L1 at runtime).
    #[cfg(feature = "debug_locks")]
    forbidden_lock: Option<&'static str>,
}

impl std::fmt::Debug for LogWriter {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("LogWriter")
            .field("block_offset", &self.block_offset)
            .field("len", &self.file.len())
            .finish()
    }
}

impl LogWriter {
    /// Wrap a (new or reopened) file; resumes mid-block when appending.
    pub fn new(file: Box<dyn WritableFile>) -> Self {
        let block_offset = (file.len() % BLOCK_SIZE as u64) as usize;
        LogWriter {
            file,
            block_offset,
            synced_len: 0,
            default_cause: None,
            #[cfg(feature = "debug_locks")]
            forbidden_lock: None,
        }
    }

    /// Tag barriers issued through this writer with `cause` whenever the
    /// calling thread has no explicit [`BarrierScope`] active. The engine
    /// tags WAL writers [`BarrierCause::WalCommit`] and MANIFEST writers
    /// [`BarrierCause::OpenManifest`]; operation-level scopes (flush commit,
    /// compaction commit, close) override this default.
    pub fn set_barrier_cause(&mut self, cause: BarrierCause) {
        self.default_cause = Some(cause);
    }

    /// Arm the `debug_locks` runtime analogue of lint rule L1: every
    /// subsequent append/sync on this writer panics if the calling thread
    /// holds the tracked lock named `name`. The engine arms its WAL writers
    /// with the engine-state lock; MANIFEST writers stay unarmed because
    /// MANIFEST I/O legitimately runs under the version-set lock (the commit
    /// point must be ordered against version installation).
    #[cfg(feature = "debug_locks")]
    pub fn forbid_lock_during_io(&mut self, name: &'static str) {
        self.forbidden_lock = Some(name);
    }

    #[cfg(feature = "debug_locks")]
    fn assert_no_forbidden_lock(&self, op: &str) {
        if let Some(name) = self.forbidden_lock {
            assert!(
                !bolt_common::debug_locks::thread_holds(name),
                "WAL {op} while holding tracked lock `{name}` — \
                 log I/O must run outside the engine mutex (lint rule L1)"
            );
        }
    }

    #[cfg(not(feature = "debug_locks"))]
    #[inline]
    fn assert_no_forbidden_lock(&self, _op: &str) {}

    /// Append one record (any size, including empty).
    ///
    /// # Errors
    ///
    /// Returns an I/O error from the underlying file.
    pub fn add_record(&mut self, payload: &[u8]) -> Result<()> {
        self.assert_no_forbidden_lock("append");
        let mut remaining = payload;
        let mut begin = true;
        loop {
            let leftover = BLOCK_SIZE - self.block_offset;
            if leftover < HEADER_SIZE {
                if leftover > 0 {
                    const ZEROS: [u8; HEADER_SIZE] = [0; HEADER_SIZE];
                    self.file.append(&ZEROS[..leftover])?;
                }
                self.block_offset = 0;
            }

            let available = BLOCK_SIZE - self.block_offset - HEADER_SIZE;
            let fragment_len = remaining.len().min(available);
            let end = fragment_len == remaining.len();
            let record_type = match (begin, end) {
                (true, true) => RecordType::Full,
                (true, false) => RecordType::First,
                (false, true) => RecordType::Last,
                (false, false) => RecordType::Middle,
            };
            self.emit(record_type, &remaining[..fragment_len])?;
            remaining = &remaining[fragment_len..];
            begin = false;
            if end {
                return Ok(());
            }
        }
    }

    fn emit(&mut self, record_type: RecordType, fragment: &[u8]) -> Result<()> {
        debug_assert!(fragment.len() <= u16::MAX as usize);
        let mut header = [0u8; HEADER_SIZE];
        let crc = crc32c::extend(crc32c::crc32c(&[record_type as u8]), fragment);
        header[..4].copy_from_slice(&crc32c::mask(crc).to_le_bytes());
        header[4..6].copy_from_slice(&(fragment.len() as u16).to_le_bytes());
        header[6] = record_type as u8;
        self.file.append(&header)?;
        self.file.append(fragment)?;
        self.block_offset += HEADER_SIZE + fragment.len();
        Ok(())
    }

    /// Full durability barrier on the log file. Elided (no device barrier)
    /// when nothing was appended since the last sync.
    ///
    /// # Errors
    ///
    /// Returns an I/O error from the underlying file.
    pub fn sync(&mut self) -> Result<()> {
        self.assert_no_forbidden_lock("sync");
        let len = self.file.len();
        if len == self.synced_len {
            return Ok(());
        }
        let _scope = self.default_cause.map(BarrierScope::default_for);
        self.file.sync()?;
        self.synced_len = len;
        Ok(())
    }

    /// Bytes appended since the last completed [`LogWriter::sync`].
    pub fn unsynced_bytes(&self) -> u64 {
        self.file.len() - self.synced_len
    }

    /// Ordering-only barrier (see [`WritableFile::ordering_barrier`]).
    ///
    /// # Errors
    ///
    /// Returns an I/O error from the underlying file.
    pub fn ordering_barrier(&mut self) -> Result<()> {
        let _scope = self.default_cause.map(BarrierScope::default_for);
        self.file.ordering_barrier()
    }

    /// Bytes written so far.
    pub fn len(&self) -> u64 {
        self.file.len()
    }

    /// `true` if nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.file.is_empty()
    }
}

/// Reads framed records back from a [`RandomAccessFile`].
///
/// A torn tail (truncated fragment, bad checksum, or a FIRST/MIDDLE chain
/// that never completes) terminates iteration cleanly.
pub struct LogReader {
    file: Arc<dyn RandomAccessFile>,
    size: u64,
    offset: u64,
    buffer: Vec<u8>,
    buffer_start: u64,
}

impl std::fmt::Debug for LogReader {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("LogReader")
            .field("offset", &self.offset)
            .field("size", &self.size)
            .finish()
    }
}

impl LogReader {
    /// Wrap `file` for sequential record reading from the start.
    pub fn new(file: Arc<dyn RandomAccessFile>) -> Self {
        let size = file.len();
        LogReader {
            file,
            size,
            offset: 0,
            buffer: Vec::new(),
            buffer_start: 0,
        }
    }

    /// Byte offset just past the last whole record successfully returned.
    pub fn offset(&self) -> u64 {
        self.offset
    }

    fn read_at(&mut self, offset: u64, len: usize) -> Result<&[u8]> {
        let within = offset >= self.buffer_start
            && offset + len as u64 <= self.buffer_start + self.buffer.len() as u64;
        if !within {
            let block_start = offset - offset % BLOCK_SIZE as u64;
            let want = (BLOCK_SIZE * 2).min((self.size - block_start) as usize);
            self.buffer = self.file.read(block_start, want)?;
            self.buffer_start = block_start;
        }
        let start = (offset - self.buffer_start) as usize;
        if start + len > self.buffer.len() {
            return Err(Error::corruption("log truncated"));
        }
        Ok(&self.buffer[start..start + len])
    }

    /// Read one fragment at the current offset. `Ok(None)` = clean EOF or a
    /// torn tail.
    fn next_fragment(&mut self) -> Result<Option<(RecordType, Vec<u8>)>> {
        loop {
            let block_remaining = BLOCK_SIZE as u64 - self.offset % BLOCK_SIZE as u64;
            if block_remaining < HEADER_SIZE as u64 {
                self.offset += block_remaining; // zero padding
                continue;
            }
            if self.offset + HEADER_SIZE as u64 > self.size {
                return Ok(None); // truncated header = torn tail
            }
            let header = self.read_at(self.offset, HEADER_SIZE)?.to_vec();
            let stored_crc = u32::from_le_bytes([header[0], header[1], header[2], header[3]]);
            let length = u16::from_le_bytes([header[4], header[5]]) as usize;
            let type_byte = header[6];
            if stored_crc == 0 && length == 0 && type_byte == 0 {
                // Zero padding = end of data in this log.
                return Ok(None);
            }
            let Some(record_type) = RecordType::from_u8(type_byte) else {
                return Ok(None); // unknown type = garbage tail
            };
            if HEADER_SIZE + length > block_remaining as usize {
                return Ok(None); // a valid fragment never spans blocks
            }
            if self.offset + (HEADER_SIZE + length) as u64 > self.size {
                return Ok(None); // truncated payload = torn tail
            }
            let payload = self
                .read_at(self.offset + HEADER_SIZE as u64, length)?
                .to_vec();
            let actual = crc32c::extend(crc32c::crc32c(&[type_byte]), &payload);
            if crc32c::unmask(stored_crc) != actual {
                return Ok(None); // checksum mismatch = torn tail
            }
            self.offset += (HEADER_SIZE + length) as u64;
            return Ok(Some((record_type, payload)));
        }
    }

    /// Read the next whole record, reassembling fragments.
    ///
    /// Returns `Ok(None)` at end-of-log (including a torn tail).
    ///
    /// # Errors
    ///
    /// Returns an I/O error from the underlying file.
    pub fn read_record(&mut self) -> Result<Option<Vec<u8>>> {
        let checkpoint = self.offset;
        let mut assembled: Option<Vec<u8>> = None;
        loop {
            match self.next_fragment()? {
                None => {
                    if assembled.is_some() {
                        // Incomplete chain at the tail: roll back so
                        // `offset()` reports the end of the last whole record.
                        self.offset = checkpoint;
                    }
                    return Ok(None);
                }
                Some((RecordType::Full, payload)) => {
                    return Ok(Some(payload));
                }
                Some((RecordType::First, payload)) => {
                    assembled = Some(payload);
                }
                Some((RecordType::Middle, payload)) => match assembled.as_mut() {
                    Some(buf) => buf.extend_from_slice(&payload),
                    None => return Ok(None), // orphan MIDDLE = garbage
                },
                Some((RecordType::Last, payload)) => match assembled.take() {
                    Some(mut buf) => {
                        buf.extend_from_slice(&payload);
                        return Ok(Some(buf));
                    }
                    None => return Ok(None), // orphan LAST = garbage
                },
            }
        }
    }

    /// Drain every remaining record into a vector.
    ///
    /// # Errors
    ///
    /// Returns an I/O error from the underlying file.
    pub fn read_all(&mut self) -> Result<Vec<Vec<u8>>> {
        let mut records = Vec::new();
        while let Some(record) = self.read_record()? {
            records.push(record);
        }
        Ok(records)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bolt_env::{CrashConfig, Env, MemEnv};

    fn roundtrip(payloads: &[Vec<u8>]) -> Vec<Vec<u8>> {
        let env = MemEnv::new();
        let mut writer = LogWriter::new(env.new_writable_file("log").unwrap());
        for p in payloads {
            writer.add_record(p).unwrap();
        }
        writer.sync().unwrap();
        drop(writer);
        let mut reader = LogReader::new(env.new_random_access_file("log").unwrap());
        reader.read_all().unwrap()
    }

    #[test]
    fn empty_log() {
        let env = MemEnv::new();
        let w = LogWriter::new(env.new_writable_file("log").unwrap());
        assert!(w.is_empty());
        drop(w);
        let mut reader = LogReader::new(env.new_random_access_file("log").unwrap());
        assert!(reader.read_record().unwrap().is_none());
    }

    #[test]
    fn small_records_roundtrip() {
        let payloads = vec![
            b"foo".to_vec(),
            b"bar".to_vec(),
            Vec::new(),
            b"xyzzy".to_vec(),
        ];
        assert_eq!(roundtrip(&payloads), payloads);
    }

    #[test]
    fn records_spanning_blocks_roundtrip() {
        let payloads = vec![
            vec![1u8; BLOCK_SIZE / 2],
            vec![2u8; BLOCK_SIZE],     // spans two blocks
            vec![3u8; BLOCK_SIZE * 3], // FIRST + MIDDLEs + LAST
            vec![4u8; 10],
        ];
        assert_eq!(roundtrip(&payloads), payloads);
    }

    #[test]
    fn record_near_block_boundary() {
        // Leave around-the-header amounts of slack at the block tail.
        for slack in 0..=HEADER_SIZE * 2 {
            let first = BLOCK_SIZE - HEADER_SIZE - HEADER_SIZE - slack;
            let payloads = vec![vec![9u8; first], b"second".to_vec()];
            assert_eq!(roundtrip(&payloads), payloads, "slack {slack}");
        }
    }

    #[test]
    fn torn_tail_drops_only_last_record() {
        let env = MemEnv::new();
        let mut writer = LogWriter::new(env.new_writable_file("log").unwrap());
        writer.add_record(b"one").unwrap();
        writer.add_record(b"two").unwrap();
        writer.sync().unwrap();
        writer.add_record(&[5u8; 100]).unwrap(); // never synced
        drop(writer);

        env.crash(CrashConfig::TornTail { seed: 7 });

        let mut reader = LogReader::new(env.new_random_access_file("log").unwrap());
        let records = reader.read_all().unwrap();
        // The synced records always survive; the torn one may or may not.
        assert!(records.len() >= 2);
        assert_eq!(records[0], b"one");
        assert_eq!(records[1], b"two");
        if records.len() == 3 {
            assert_eq!(records[2], vec![5u8; 100]);
        }
    }

    #[test]
    fn torn_multiblock_record_is_dropped_entirely() {
        let env = MemEnv::new();
        let mut writer = LogWriter::new(env.new_writable_file("log").unwrap());
        writer.add_record(b"keep").unwrap();
        writer.sync().unwrap();
        let synced = writer.len();
        writer.add_record(&vec![6u8; BLOCK_SIZE * 2]).unwrap();
        drop(writer);

        // Keep exactly one extra block: the FIRST fragment survives but its
        // LAST never does.
        {
            let mut f = env.new_writable_file("cut").unwrap();
            let r = env.new_random_access_file("log").unwrap();
            let keep = synced as usize + BLOCK_SIZE - (synced as usize % BLOCK_SIZE);
            f.append(&r.read(0, keep).unwrap()).unwrap();
            f.sync().unwrap();
        }
        let mut reader = LogReader::new(env.new_random_access_file("cut").unwrap());
        let records = reader.read_all().unwrap();
        assert_eq!(records, vec![b"keep".to_vec()]);
        assert_eq!(reader.offset(), synced);
    }

    #[test]
    fn corrupt_byte_terminates_cleanly() {
        let env = MemEnv::new();
        let mut writer = LogWriter::new(env.new_writable_file("log").unwrap());
        writer.add_record(b"alpha").unwrap();
        writer.add_record(b"beta").unwrap();
        writer.sync().unwrap();
        drop(writer);

        // Flip a payload byte of the second record.
        let r = env.new_random_access_file("log").unwrap();
        let mut bytes = r.read(0, r.len() as usize).unwrap();
        let second_payload = HEADER_SIZE + 5 + HEADER_SIZE; // into "beta"
        bytes[second_payload] ^= 0xff;
        let mut f = env.new_writable_file("log2").unwrap();
        f.append(&bytes).unwrap();
        f.sync().unwrap();
        drop(f);

        let mut reader = LogReader::new(env.new_random_access_file("log2").unwrap());
        assert_eq!(reader.read_all().unwrap(), vec![b"alpha".to_vec()]);
    }

    #[test]
    fn reopen_and_append_continues_block_alignment() {
        let env = MemEnv::new();
        let mut writer = LogWriter::new(env.new_writable_file("log").unwrap());
        writer.add_record(&vec![1u8; 1000]).unwrap();
        writer.sync().unwrap();
        drop(writer);

        let mut writer = LogWriter::new(env.new_appendable_file("log").unwrap());
        writer.add_record(&vec![2u8; BLOCK_SIZE]).unwrap();
        writer.sync().unwrap();
        drop(writer);

        let mut reader = LogReader::new(env.new_random_access_file("log").unwrap());
        let records = reader.read_all().unwrap();
        assert_eq!(records.len(), 2);
        assert_eq!(records[0], vec![1u8; 1000]);
        assert_eq!(records[1], vec![2u8; BLOCK_SIZE]);
    }

    #[test]
    fn redundant_syncs_are_elided() {
        let env = MemEnv::new();
        let mut writer = LogWriter::new(env.new_writable_file("log").unwrap());
        writer.add_record(b"rec").unwrap();
        assert!(writer.unsynced_bytes() > 0);
        writer.sync().unwrap();
        assert_eq!(writer.unsynced_bytes(), 0);
        let after_first = env.stats().fsync_calls();
        // No new bytes: these must not reach the device.
        writer.sync().unwrap();
        writer.sync().unwrap();
        assert_eq!(env.stats().fsync_calls(), after_first);
        // New bytes: the barrier is real again.
        writer.add_record(b"more").unwrap();
        writer.sync().unwrap();
        assert_eq!(env.stats().fsync_calls(), after_first + 1);
    }

    #[test]
    fn writer_default_cause_tags_barriers() {
        use bolt_common::events::{BarrierCause, BarrierScope, EventSink};
        let env = MemEnv::new();
        let sink = Arc::new(EventSink::new());
        env.stats().set_event_sink(Arc::clone(&sink));
        let mut writer = LogWriter::new(env.new_writable_file("log").unwrap());
        writer.set_barrier_cause(BarrierCause::WalCommit);
        writer.add_record(b"rec").unwrap();
        writer.sync().unwrap();
        assert_eq!(sink.barrier_count(BarrierCause::WalCommit), 1);
        // An explicit scope on the calling thread overrides the default.
        writer.add_record(b"rec2").unwrap();
        {
            let _scope = BarrierScope::new(BarrierCause::WalClose);
            writer.sync().unwrap();
        }
        assert_eq!(sink.barrier_count(BarrierCause::WalClose), 1);
        assert_eq!(sink.barrier_count(BarrierCause::WalCommit), 1);
    }

    #[test]
    fn reopened_log_first_sync_is_never_elided() {
        let env = MemEnv::new();
        let mut writer = LogWriter::new(env.new_writable_file("log").unwrap());
        writer.add_record(b"one").unwrap();
        writer.sync().unwrap();
        drop(writer);
        // Reopened: durability of existing bytes is unknown to the writer.
        let mut writer = LogWriter::new(env.new_appendable_file("log").unwrap());
        let before = env.stats().fsync_calls();
        writer.sync().unwrap();
        assert_eq!(env.stats().fsync_calls(), before + 1);
    }

    #[test]
    fn many_random_sized_records() {
        let mut rng = bolt_common::rng::Rng64::new(2024);
        let payloads: Vec<Vec<u8>> = (0..300)
            .map(|_| {
                let len = rng.next_below(3 * BLOCK_SIZE as u64) as usize;
                (0..len)
                    .map(|i| (i as u8) ^ (rng.next_u64() as u8))
                    .collect()
            })
            .collect();
        assert_eq!(roundtrip(&payloads), payloads);
    }
}

//! Property-based tests of the WAL format: arbitrary record sequences
//! round-trip, and *any* truncation of the file yields a strict prefix of
//! the records (never garbage, never a skipped middle record).

use proptest::prelude::*;

use bolt_env::{Env, MemEnv};
use bolt_wal::{LogReader, LogWriter, BLOCK_SIZE};

fn records_strategy() -> impl Strategy<Value = Vec<Vec<u8>>> {
    proptest::collection::vec(
        proptest::collection::vec(any::<u8>(), 0..(BLOCK_SIZE * 2)),
        1..20,
    )
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 32, .. ProptestConfig::default() })]

    #[test]
    fn roundtrip(records in records_strategy()) {
        let env = MemEnv::new();
        let mut writer = LogWriter::new(env.new_writable_file("log").unwrap());
        for r in &records {
            writer.add_record(r).unwrap();
        }
        writer.sync().unwrap();
        drop(writer);
        let mut reader = LogReader::new(env.new_random_access_file("log").unwrap());
        prop_assert_eq!(reader.read_all().unwrap(), records);
    }

    #[test]
    fn any_truncation_yields_a_prefix(records in records_strategy(), cut_frac in 0.0f64..1.0) {
        let env = MemEnv::new();
        let mut writer = LogWriter::new(env.new_writable_file("log").unwrap());
        for r in &records {
            writer.add_record(r).unwrap();
        }
        writer.sync().unwrap();
        let total = writer.len();
        drop(writer);

        let cut = (total as f64 * cut_frac) as usize;
        let full = env.new_random_access_file("log").unwrap();
        let bytes = full.read(0, cut).unwrap();
        let mut f = env.new_writable_file("cut").unwrap();
        f.append(&bytes).unwrap();
        f.sync().unwrap();
        drop(f);

        let mut reader = LogReader::new(env.new_random_access_file("cut").unwrap());
        let recovered = reader.read_all().unwrap();
        prop_assert!(recovered.len() <= records.len());
        for (got, want) in recovered.iter().zip(records.iter()) {
            prop_assert_eq!(got, want, "recovered records must be an exact prefix");
        }
    }

    #[test]
    fn single_bitflip_never_panics_and_keeps_prefix(
        records in records_strategy(),
        flip_frac in 0.0f64..1.0,
    ) {
        let env = MemEnv::new();
        let mut writer = LogWriter::new(env.new_writable_file("log").unwrap());
        for r in &records {
            writer.add_record(r).unwrap();
        }
        writer.sync().unwrap();
        let total = writer.len() as usize;
        drop(writer);
        prop_assume!(total > 0);

        let pos = ((total - 1) as f64 * flip_frac) as usize;
        let full = env.new_random_access_file("log").unwrap();
        let mut bytes = full.read(0, total).unwrap();
        bytes[pos] ^= 0x01;
        let mut f = env.new_writable_file("flipped").unwrap();
        f.append(&bytes).unwrap();
        f.sync().unwrap();
        drop(f);

        // Reading must terminate without panicking; whatever is returned
        // before the corruption point must match the originals.
        let mut reader = LogReader::new(env.new_random_access_file("flipped").unwrap());
        let recovered = reader.read_all().unwrap();
        for (got, want) in recovered.iter().zip(records.iter()) {
            if got != want {
                // The flipped byte landed inside this record's payload but
                // the CRC happened to be the flipped byte itself... not
                // possible: CRC mismatch drops the record. A mismatch here
                // means the flip hit a *later* fragment of a reassembled
                // record — still a corruption stop, never silent damage.
                prop_assert!(false, "corrupted record returned");
            }
        }
    }
}

//! **PR 6 trajectory bench** — sharded vs. single-engine write scaling.
//!
//! Runs YCSB Load (insert-only), A (50/50 update/read), and C (read-only)
//! with 8 client threads against two configurations *in the same
//! process*:
//!
//! * **1 shard**: one `Db` on one simulated SSD, and
//! * **4 shards**: a [`ShardedDb`] opened with
//!   [`ShardedDb::open_with_envs`] — four independent simulated SSDs, one
//!   per shard.
//!
//! The device model is deliberately **bandwidth-bound** (low sequential
//! write bandwidth, small barrier cost, 1 KB values, `sync_wal = true`):
//! that is the regime where one engine's single WAL device is the
//! bottleneck and four shards' four devices give ~4× aggregate bandwidth.
//! Device time is modeled as wall-clock sleeps, so the four shards'
//! queues drain concurrently even on one CPU — exactly like four real
//! devices would.
//!
//! Results are appended to `BENCH_PR6.json` (stable schema: one row per
//! `{workload, threads, shards}` with ops/s and latency percentiles).
//!
//! Run: `cargo run --release -p bolt-bench --bin bench_trajectory`
//! CI smoke: `cargo run -p bolt-bench --bin bench_trajectory -- --smoke`

use std::io::Write as _;
use std::sync::atomic::AtomicU64;
use std::sync::Arc;
use std::time::Duration;

use bolt_bench::CAPACITY_SCALE;
use bolt_core::{Db, Options};
use bolt_env::{DeviceModel, Env, SimEnv};
use bolt_sharded::{Router, ShardedDb};
use bolt_ycsb::{load_db, run_workload, BenchConfig, KvTarget, RunResult, Workload};

/// Client threads for every phase (2 per shard in the 4-shard config).
const THREADS: usize = 8;
/// Shards in the partitioned configuration.
const SHARDS: usize = 4;

/// The write-bandwidth-bound device: 2 MB/s sequential writes and a
/// 0.5 ms barrier mean a synced group is dominated by queue-drain time,
/// so aggregate throughput tracks aggregate device bandwidth.
fn trajectory_device() -> DeviceModel {
    DeviceModel {
        write_bandwidth: 2 * 1024 * 1024,
        read_bandwidth: 48 * 1024 * 1024,
        read_base_latency: Duration::from_micros(30),
        barrier_latency: Duration::from_micros(500),
        time_scale: 1.0,
    }
}

/// A nearly-free device so `--smoke` exercises every code path in
/// milliseconds.
fn smoke_device() -> DeviceModel {
    DeviceModel {
        write_bandwidth: 256 * 1024 * 1024,
        read_bandwidth: 256 * 1024 * 1024,
        read_base_latency: Duration::ZERO,
        barrier_latency: Duration::from_micros(10),
        time_scale: 1.0,
    }
}

/// One emitted row of the stable schema.
struct Row {
    workload: &'static str,
    shards: usize,
    ops: u64,
    ops_per_sec: f64,
    p50_us: u64,
    p99_us: u64,
    p999_us: u64,
}

fn row(workload: &'static str, shards: usize, r: &RunResult) -> Row {
    Row {
        workload,
        shards,
        ops: r.ops,
        ops_per_sec: r.throughput(),
        p50_us: r.percentile(50.0) / 1_000,
        p99_us: r.percentile(99.0) / 1_000,
        p999_us: r.percentile(99.9) / 1_000,
    }
}

/// Run Load, A, C against one target, in YCSB phase order (A mutates keys
/// the load created; C reads the post-A state).
fn run_phases<T: KvTarget>(db: &Arc<T>, shards: usize, cfg: &BenchConfig) -> Vec<Row> {
    let mut rows = Vec::new();
    let load = load_db(db, cfg).expect("load phase");
    rows.push(row("Load", shards, &load));
    let cursor = Arc::new(AtomicU64::new(cfg.record_count));
    let a = run_workload(db, &Workload::a(), cfg, &cursor).expect("workload A");
    rows.push(row("A", shards, &a));
    let c = run_workload(db, &Workload::c(), cfg, &cursor).expect("workload C");
    rows.push(row("C", shards, &c));
    rows
}

fn opts() -> Options {
    let mut opts = Options::bolt().scaled(CAPACITY_SCALE);
    // Every acknowledged write is synced — the paper's durable-write
    // regime, and the one where the WAL device gates throughput.
    opts.sync_wal = true;
    opts
}

fn render_json(device: &DeviceModel, rows: &[Row], speedups: &[(String, f64)]) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str("  \"bench\": \"bench_trajectory\",\n");
    out.push_str("  \"schema\": 1,\n");
    out.push_str(&format!("  \"threads\": {THREADS},\n"));
    out.push_str("  \"value_len\": 1024,\n");
    out.push_str(&format!(
        "  \"device\": {{\"write_bandwidth\": {}, \"barrier_latency_us\": {}}},\n",
        device.write_bandwidth,
        device.barrier_latency.as_micros()
    ));
    out.push_str("  \"rows\": [\n");
    for (i, r) in rows.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"workload\": \"{}\", \"threads\": {}, \"shards\": {}, \"ops\": {}, \
             \"ops_per_sec\": {:.1}, \"p50_us\": {}, \"p99_us\": {}, \"p999_us\": {}}}{}\n",
            r.workload,
            THREADS,
            r.shards,
            r.ops,
            r.ops_per_sec,
            r.p50_us,
            r.p99_us,
            r.p999_us,
            if i + 1 < rows.len() { "," } else { "" }
        ));
    }
    out.push_str("  ],\n");
    out.push_str("  \"speedup_4x_over_1x\": {");
    for (i, (w, s)) in speedups.iter().enumerate() {
        out.push_str(&format!(
            "\"{}\": {:.2}{}",
            w,
            s,
            if i + 1 < speedups.len() { ", " } else { "" }
        ));
    }
    out.push_str("}\n}\n");
    out
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let device = if smoke {
        smoke_device()
    } else {
        trajectory_device()
    };
    let cfg = BenchConfig {
        record_count: if smoke { 400 } else { 4_000 },
        op_count: if smoke { 400 } else { 4_000 },
        threads: THREADS,
        value_len: 1024,
        seed: 0x5eed,
    };

    // 1-shard baseline: one engine on one simulated device.
    let env: Arc<dyn Env> = Arc::new(SimEnv::new(device));
    let db = Arc::new(Db::open(Arc::clone(&env), "bench-db", opts()).expect("open single db"));
    let mut rows = run_phases(&db, 1, &cfg);
    db.close().expect("close single db");

    // 4-shard configuration: one simulated device per shard.
    let envs: Vec<Arc<dyn Env>> = (0..SHARDS)
        .map(|_| Arc::new(SimEnv::new(device)) as Arc<dyn Env>)
        .collect();
    let sharded = Arc::new(
        ShardedDb::open_with_envs(
            envs,
            "bench-db",
            opts(),
            Router::hash(SHARDS).expect("router"),
        )
        .expect("open sharded db"),
    );
    rows.extend(run_phases(&sharded, SHARDS, &cfg));
    sharded.close().expect("close sharded db");

    // Per-workload speedup of the 4-shard config over the baseline.
    let mut speedups = Vec::new();
    for workload in ["Load", "A", "C"] {
        let single = rows
            .iter()
            .find(|r| r.workload == workload && r.shards == 1)
            .expect("single row");
        let sharded = rows
            .iter()
            .find(|r| r.workload == workload && r.shards == SHARDS)
            .expect("sharded row");
        speedups.push((
            workload.to_string(),
            sharded.ops_per_sec / single.ops_per_sec.max(1e-9),
        ));
    }

    println!(
        "{:<9} {:>7} {:>12} {:>9} {:>9} {:>9}",
        "workload", "shards", "ops/s", "p50(us)", "p99(us)", "p999(us)"
    );
    for r in &rows {
        println!(
            "{:<9} {:>7} {:>12.1} {:>9} {:>9} {:>9}",
            r.workload, r.shards, r.ops_per_sec, r.p50_us, r.p99_us, r.p999_us
        );
    }
    for (w, s) in &speedups {
        println!("speedup {w}: {s:.2}x");
    }

    if smoke {
        // CI smoke: correctness of the harness, not the perf claim — the
        // nearly-free device leaves nothing for shards to parallelize.
        assert!(
            rows.iter().all(|r| r.ops > 0 && r.ops_per_sec > 0.0),
            "smoke run produced empty phases"
        );
        println!("smoke ok (results not recorded)");
        return;
    }

    let json = render_json(&device, &rows, &speedups);
    let path = "BENCH_PR6.json";
    let mut file = std::fs::File::create(path).expect("create BENCH_PR6.json");
    file.write_all(json.as_bytes())
        .expect("write BENCH_PR6.json");
    println!("(results written to {path})");

    let load_speedup = speedups[0].1;
    assert!(
        load_speedup >= 2.5,
        "write-heavy speedup regressed below the PR-6 floor: {load_speedup:.2}x < 2.5x"
    );
}

//! **PR 7 policy bench** — write/read/space amplification per compaction
//! policy.
//!
//! Runs the full YCSB suite (Load, then A–F in presentation order, sharing
//! one key space) against the BoLT profile under each of the three
//! compaction policies — **leveled**, **size-tiered**, **lazy-leveled** —
//! on identical simulated SSDs, and reports per-leg throughput/latency
//! plus the amplification triple the compaction design-space trade-off is
//! about:
//!
//! * **write amp**: device bytes written per user byte accepted
//!   (cumulative; per-leg deltas are attributed to the leg that was
//!   running, so background compaction finishing during a read leg counts
//!   there — exactly like on real hardware),
//! * **read amp**: device bytes read per requested value byte on the
//!   read-only C leg,
//! * **space amp**: live table bytes per loaded user byte at the end of
//!   the suite.
//!
//! Results are written to `BENCH_PR7.json` (stable schema: one row per
//! `{policy, workload}` plus one summary per policy). The run asserts the
//! PR-7 acceptance floor: the lazy-leveled hybrid's cumulative write amp
//! stays below leveled's.
//!
//! Run: `cargo run --release -p bolt-bench --bin bench_policies`
//! CI smoke: `cargo run -p bolt-bench --bin bench_policies -- --smoke`

use std::io::Write as _;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use bolt_bench::{bench_device, CAPACITY_SCALE};
use bolt_core::{CompactionPolicyKind, Db, Options};
use bolt_env::{DeviceModel, Env, SimEnv};
use bolt_ycsb::{load_db, run_workload, BenchConfig, RunResult, Workload};

/// Client threads (the paper: 4).
const THREADS: usize = 4;

/// A nearly-free device so `--smoke` exercises every code path in
/// milliseconds.
fn smoke_device() -> DeviceModel {
    DeviceModel {
        write_bandwidth: 256 * 1024 * 1024,
        read_bandwidth: 256 * 1024 * 1024,
        read_base_latency: Duration::ZERO,
        barrier_latency: Duration::from_micros(10),
        time_scale: 1.0,
    }
}

/// One emitted row of the stable schema.
struct Row {
    policy: &'static str,
    workload: &'static str,
    ops: u64,
    ops_per_sec: f64,
    p50_us: u64,
    p99_us: u64,
    /// Device bytes written during this leg per user byte accepted during
    /// it (0 when the leg accepted no user bytes).
    write_amp: f64,
    /// Device bytes read during this leg per requested value byte.
    read_amp: f64,
}

/// Per-policy end-of-suite summary.
struct Summary {
    policy: &'static str,
    /// Cumulative device-bytes-written / user-bytes-accepted over the
    /// whole suite (user bytes only flow in the write-carrying legs).
    write_amp: f64,
    /// Read amp of the read-only C leg.
    read_amp_c: f64,
    /// Live table bytes per loaded user byte after the suite settles.
    space_amp: f64,
    /// Barriers per compaction (BoLT's 2-barrier contract is
    /// policy-independent).
    barriers_per_compaction: f64,
}

fn policy_opts(policy: CompactionPolicyKind) -> Options {
    let mut opts = Options::bolt().scaled(CAPACITY_SCALE);
    opts.compaction_policy = policy;
    opts
}

/// Run one leg and compute its amplification from metrics deltas.
fn leg(
    db: &Arc<Db>,
    policy: &'static str,
    workload: &'static str,
    result: &RunResult,
    before: &bolt_core::MetricsSnapshot,
    value_len: usize,
) -> Row {
    let after = db.metrics();
    let wrote = after.io.bytes_written - before.io.bytes_written;
    let accepted = after.db.user_bytes_written - before.db.user_bytes_written;
    let read = after.io.bytes_read - before.io.bytes_read;
    let requested = result.ops * value_len as u64;
    Row {
        policy,
        workload,
        ops: result.ops,
        ops_per_sec: result.throughput(),
        p50_us: result.percentile(50.0) / 1_000,
        p99_us: result.percentile(99.0) / 1_000,
        write_amp: if accepted == 0 {
            0.0
        } else {
            wrote as f64 / accepted as f64
        },
        read_amp: if requested == 0 {
            0.0
        } else {
            read as f64 / requested as f64
        },
    }
}

/// Run Load then A–F under one policy on a fresh device; returns the
/// per-leg rows and the policy summary.
fn run_policy(
    policy: CompactionPolicyKind,
    device: DeviceModel,
    cfg: &BenchConfig,
) -> (Vec<Row>, Summary) {
    let name = policy.as_str();
    let env: Arc<dyn Env> = Arc::new(SimEnv::new(device));
    let db = Arc::new(
        Db::open(Arc::clone(&env), "bench-db", policy_opts(policy)).expect("open policy db"),
    );

    let mut rows = Vec::new();
    let before = db.metrics();
    let load = load_db(&db, cfg).expect("load phase");
    rows.push(leg(&db, name, "Load", &load, &before, cfg.value_len));

    let cursor = Arc::new(AtomicU64::new(cfg.record_count));
    let mut read_amp_c = 0.0;
    for workload in [
        Workload::a(),
        Workload::b(),
        Workload::c(),
        Workload::d(),
        Workload::e(),
        Workload::f(),
    ] {
        let before = db.metrics();
        let result = run_workload(&db, &workload, cfg, &cursor).expect("workload leg");
        let row = leg(&db, name, workload.name, &result, &before, cfg.value_len);
        if workload.name == "C" {
            read_amp_c = row.read_amp;
        }
        rows.push(row);
    }

    // Settle so the space measurement sees committed tables, not an
    // in-flight memtable.
    db.flush().expect("final flush");
    let metrics = db.metrics();
    let live_bytes: u64 = metrics.levels.iter().map(|l| l.bytes).sum();
    let loaded = cursor.load(Ordering::Relaxed) * cfg.value_len as u64;
    let summary = Summary {
        policy: name,
        write_amp: metrics.write_amplification(),
        read_amp_c,
        space_amp: if loaded == 0 {
            0.0
        } else {
            live_bytes as f64 / loaded as f64
        },
        barriers_per_compaction: metrics.barriers_per_compaction(),
    };
    db.close().expect("close policy db");
    (rows, summary)
}

fn render_json(device: &DeviceModel, cfg: &BenchConfig, rows: &[Row], sums: &[Summary]) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str("  \"bench\": \"bench_policies\",\n");
    out.push_str("  \"schema\": 1,\n");
    out.push_str(&format!("  \"threads\": {THREADS},\n"));
    out.push_str(&format!("  \"value_len\": {},\n", cfg.value_len));
    out.push_str(&format!("  \"record_count\": {},\n", cfg.record_count));
    out.push_str(&format!("  \"ops_per_leg\": {},\n", cfg.op_count));
    out.push_str(&format!(
        "  \"device\": {{\"write_bandwidth\": {}, \"barrier_latency_us\": {}}},\n",
        device.write_bandwidth,
        device.barrier_latency.as_micros()
    ));
    out.push_str("  \"rows\": [\n");
    for (i, r) in rows.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"policy\": \"{}\", \"workload\": \"{}\", \"ops\": {}, \
             \"ops_per_sec\": {:.1}, \"p50_us\": {}, \"p99_us\": {}, \
             \"write_amp\": {:.2}, \"read_amp\": {:.2}}}{}\n",
            r.policy,
            r.workload,
            r.ops,
            r.ops_per_sec,
            r.p50_us,
            r.p99_us,
            r.write_amp,
            r.read_amp,
            if i + 1 < rows.len() { "," } else { "" }
        ));
    }
    out.push_str("  ],\n");
    out.push_str("  \"summary\": [\n");
    for (i, s) in sums.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"policy\": \"{}\", \"write_amp\": {:.2}, \"read_amp_c\": {:.2}, \
             \"space_amp\": {:.2}, \"barriers_per_compaction\": {:.2}}}{}\n",
            s.policy,
            s.write_amp,
            s.read_amp_c,
            s.space_amp,
            s.barriers_per_compaction,
            if i + 1 < sums.len() { "," } else { "" }
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let device = if smoke {
        smoke_device()
    } else {
        bench_device()
    };
    let cfg = BenchConfig {
        record_count: if smoke { 400 } else { 8_000 },
        op_count: if smoke { 400 } else { 4_000 },
        threads: THREADS,
        value_len: 1024,
        seed: 0x5eed,
    };

    let mut rows = Vec::new();
    let mut sums = Vec::new();
    for policy in [
        CompactionPolicyKind::Leveled,
        CompactionPolicyKind::SizeTiered,
        CompactionPolicyKind::LazyLeveled,
    ] {
        let (r, s) = run_policy(policy, device, &cfg);
        rows.extend(r);
        sums.push(s);
    }

    println!(
        "{:<13} {:<9} {:>10} {:>9} {:>9} {:>10} {:>9}",
        "policy", "workload", "ops/s", "p50(us)", "p99(us)", "write-amp", "read-amp"
    );
    for r in &rows {
        println!(
            "{:<13} {:<9} {:>10.1} {:>9} {:>9} {:>10.2} {:>9.2}",
            r.policy, r.workload, r.ops_per_sec, r.p50_us, r.p99_us, r.write_amp, r.read_amp
        );
    }
    for s in &sums {
        println!(
            "{}: write amp {:.2} | read amp (C) {:.2} | space amp {:.2} | barriers/compaction {:.2}",
            s.policy, s.write_amp, s.read_amp_c, s.space_amp, s.barriers_per_compaction
        );
    }

    if smoke {
        // CI smoke: harness correctness only — the tiny key space says
        // nothing about amplification.
        assert!(
            rows.iter().all(|r| r.ops > 0 && r.ops_per_sec > 0.0),
            "smoke run produced empty legs"
        );
        println!("smoke ok (results not recorded)");
        return;
    }

    let json = render_json(&device, &cfg, &rows, &sums);
    let path = "BENCH_PR7.json";
    let mut file = std::fs::File::create(path).expect("create BENCH_PR7.json");
    file.write_all(json.as_bytes())
        .expect("write BENCH_PR7.json");
    println!("(results written to {path})");

    let leveled = &sums[0];
    let lazy = &sums[2];
    assert!(
        lazy.write_amp < leveled.write_amp,
        "lazy-leveled write amp must beat leveled on the write-heavy suite: \
         {:.2} >= {:.2}",
        lazy.write_amp,
        leveled.write_amp
    );
}

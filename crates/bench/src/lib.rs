//! # bolt-bench
//!
//! Shared harness for the figure-regeneration benchmarks. Each bench target
//! under `benches/` reproduces one table/figure of the BoLT paper
//! (MIDDLEWARE 2020); this crate holds the common scaffolding: scaled
//! experiment sizing, environment construction, the YCSB suite driver, and
//! result formatting (stdout tables + CSV files under `target/figures/`).
//!
//! ## Scaling
//!
//! The paper's experiments load 50–100 GB onto a SATA SSD. The harness
//! runs the same workloads at `1/64` capacity scale on the simulated SSD
//! (`bolt_env::SimEnv`), with every governing *ratio* preserved —
//! memtable : level1 : multiplier, SSTable : logical SSTable, group budget.
//! Set `BOLT_BENCH_SCALE` (default `1.0`) to multiply record/op counts,
//! e.g. `BOLT_BENCH_SCALE=4 cargo bench -p bolt-bench --bench fig13_ycsb`.

#![warn(missing_docs)]

use std::io::Write as _;
use std::sync::atomic::AtomicU64;
use std::sync::Arc;

use bolt_core::{Db, Options};
use bolt_env::{DeviceModel, Env, IoSnapshot, SimEnv};
use bolt_ycsb::{load_db, run_workload, BenchConfig, RunResult, Workload};

pub use bolt_core;
pub use bolt_env;
pub use bolt_ycsb;

/// Capacity scale applied to every profile (1/64 of the paper's sizes).
pub const CAPACITY_SCALE: f64 = 1.0 / 64.0;

/// Default time scale of the simulated SSD (1.0 = real delays).
pub const TIME_SCALE: f64 = 1.0;

/// The simulated SSD used by every figure bench.
///
/// Capacity knobs are scaled 1/64, so the device is scaled 1/8 in both
/// sequential bandwidth and barrier latency. That preserves the paper's
/// governing ratio — a 2 MB SSTable at 500 MB/s takes 4 ms against a 2 ms
/// barrier (≈50 % barrier overhead); a scaled 32 KB SSTable at 64 MB/s
/// takes 0.5 ms against a 0.25 ms barrier (≈50 %) — while keeping CPU time
/// negligible relative to modeled I/O, exactly as on real hardware.
pub fn bench_device() -> DeviceModel {
    DeviceModel {
        write_bandwidth: 64 * 1024 * 1024,
        read_bandwidth: 70 * 1024 * 1024,
        read_base_latency: std::time::Duration::from_micros(30),
        // A consumer-SSD cache flush costs 1–5 ms; 1 ms here (unscaled —
        // barrier cost does not shrink with capacity).
        barrier_latency: std::time::Duration::from_millis(1),
        time_scale: TIME_SCALE,
    }
}

/// Multiplier from `BOLT_BENCH_SCALE` (default 1.0).
pub fn bench_scale() -> f64 {
    std::env::var("BOLT_BENCH_SCALE")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(1.0)
}

/// Scale an operation count by [`bench_scale`].
pub fn scaled_ops(base: u64) -> u64 {
    ((base as f64) * bench_scale()).max(1.0) as u64
}

/// A fresh simulated-SSD environment with the calibrated bench model.
pub fn sim_env() -> Arc<dyn Env> {
    Arc::new(SimEnv::new(bench_device()))
}

/// Open a database on `env` with `opts` scaled to laptop size.
pub fn open_db(env: &Arc<dyn Env>, opts: Options) -> Arc<Db> {
    Arc::new(
        Db::open(Arc::clone(env), "bench-db", opts.scaled(CAPACITY_SCALE)).expect("open bench db"),
    )
}

/// The system profiles of Fig 13, in the paper's presentation order.
pub fn fig13_profiles() -> Vec<(&'static str, Options)> {
    vec![
        ("Level", Options::leveldb()),
        ("LVL64MB", Options::leveldb_64mb()),
        ("Hyper", Options::hyperleveldb()),
        ("Pebbles", Options::pebblesdb()),
        ("Rocks", Options::rocksdb()),
        ("BoLT", Options::bolt()),
        ("HBoLT", Options::hyperbolt()),
    ]
}

/// The Fig 12(a) ablation ladder on LevelDB.
pub fn fig12a_profiles() -> Vec<(&'static str, Options)> {
    vec![
        ("LevelDB", Options::leveldb()),
        ("+LS", Options::bolt_ls()),
        ("+GC", Options::bolt_gc()),
        ("+STL", Options::bolt_stl()),
        ("+FC", Options::bolt()),
    ]
}

/// The Fig 12(b) ablation ladder on HyperLevelDB.
pub fn fig12b_profiles() -> Vec<(&'static str, Options)> {
    let on_hyper = |mut opts: Options| {
        let hyper = Options::hyperleveldb();
        opts.sstable_bytes = hyper.sstable_bytes;
        opts.level0_slowdown_trigger = hyper.level0_slowdown_trigger;
        opts.level0_stop_trigger = hyper.level0_stop_trigger;
        opts.seek_compaction = hyper.seek_compaction;
        opts
    };
    vec![
        ("Hyper", Options::hyperleveldb()),
        ("+LS", on_hyper(Options::bolt_ls())),
        ("+GC", on_hyper(Options::bolt_gc())),
        ("+STL", on_hyper(Options::bolt_stl())),
        ("+FC", Options::hyperbolt()),
    ]
}

/// One phase's headline numbers.
#[derive(Debug, Clone)]
pub struct PhaseResult {
    /// Workload name (LA, A, ..., LE, E).
    pub phase: String,
    /// Throughput in ops/s.
    pub throughput: f64,
    /// Selected latency percentiles in nanoseconds: (p50, p95, p99, p999).
    pub latency: (u64, u64, u64, u64),
    /// Full CDF of the phase's operations.
    pub cdf: Vec<(u64, f64)>,
}

impl PhaseResult {
    fn from_run(result: &RunResult) -> PhaseResult {
        PhaseResult {
            phase: result.workload.clone(),
            throughput: result.throughput(),
            latency: (
                result.percentile(50.0),
                result.percentile(95.0),
                result.percentile(99.0),
                result.percentile(99.9),
            ),
            cdf: result.overall.cdf(),
        }
    }
}

/// Results of a full YCSB suite run for one system.
#[derive(Debug)]
pub struct SuiteResult {
    /// System label.
    pub system: String,
    /// Per-phase results in run order (LA, A, B, C, F, D, LE, E).
    pub phases: Vec<PhaseResult>,
    /// I/O counters accumulated over the first database (LA..D).
    pub io: IoSnapshot,
    /// Total bytes written across both databases.
    pub bytes_written: u64,
    /// Full per-phase run results for CDF figures.
    pub op_results: Vec<(String, RunResult)>,
}

/// Workload-suite sizing.
#[derive(Debug, Clone)]
pub struct SuiteConfig {
    /// Records loaded in LA and LE.
    pub records: u64,
    /// Operations per transactional phase.
    pub ops: u64,
    /// Value size in bytes.
    pub value_len: usize,
    /// Uniform instead of zipfian request distribution for A/B/C/F/E.
    pub uniform: bool,
    /// Client threads.
    pub threads: usize,
}

impl Default for SuiteConfig {
    fn default() -> Self {
        SuiteConfig {
            records: scaled_ops(30_000),
            ops: scaled_ops(10_000),
            value_len: 256,
            uniform: false,
            threads: 4,
        }
    }
}

/// Run the paper's YCSB order — LA, A, B, C, F, D, delete DB, LE, E — for
/// one system profile on a fresh simulated SSD.
pub fn run_suite(system: &str, opts: Options, cfg: &SuiteConfig) -> SuiteResult {
    let env = sim_env();
    let db = open_db(&env, opts.clone());
    let bench_cfg = BenchConfig {
        record_count: cfg.records,
        op_count: cfg.ops,
        threads: cfg.threads,
        value_len: cfg.value_len,
        seed: 0xb01d,
    };

    let mut phases = Vec::new();
    let mut op_results = Vec::new();

    let load = load_db(&db, &bench_cfg).expect("load A");
    let mut load_phase = PhaseResult::from_run(&load);
    load_phase.phase = "LA".into();
    phases.push(load_phase);
    op_results.push(("LA".into(), load));

    let dist = if cfg.uniform {
        bolt_ycsb::RequestDistribution::Uniform
    } else {
        bolt_ycsb::RequestDistribution::Zipfian
    };
    let cursor = Arc::new(AtomicU64::new(cfg.records));
    for workload in [
        Workload::a().with_distribution(dist),
        Workload::b().with_distribution(dist),
        Workload::c().with_distribution(dist),
        Workload::f().with_distribution(dist),
        Workload::d(),
    ] {
        let result = run_workload(&db, &workload, &bench_cfg, &cursor).expect(workload.name);
        phases.push(PhaseResult::from_run(&result));
        op_results.push((workload.name.to_string(), result));
    }
    let io_first = env.stats().snapshot();
    db.close().expect("close");

    // Delete database, Load E, E.
    let env2 = sim_env();
    let db = open_db(&env2, opts);
    let load = load_db(&db, &bench_cfg).expect("load E");
    let mut load_phase = PhaseResult::from_run(&load);
    load_phase.phase = "LE".into();
    phases.push(load_phase);
    op_results.push(("LE".into(), load));

    let cursor = Arc::new(AtomicU64::new(cfg.records));
    let e_cfg = BenchConfig {
        // Scans touch ~50 records each; run fewer of them.
        op_count: (cfg.ops / 8).max(200),
        ..bench_cfg
    };
    let result =
        run_workload(&db, &Workload::e().with_distribution(dist), &e_cfg, &cursor).expect("E");
    phases.push(PhaseResult::from_run(&result));
    op_results.push(("E".into(), result));
    db.close().expect("close");
    let io_second = env2.stats().snapshot();

    SuiteResult {
        system: system.to_string(),
        phases,
        bytes_written: io_first.bytes_written + io_second.bytes_written,
        io: io_first,
        op_results,
    }
}

/// Print an aligned table.
pub fn print_table(title: &str, headers: &[&str], rows: &[Vec<String>]) {
    println!("\n=== {title} ===");
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let header_line: Vec<String> = headers
        .iter()
        .enumerate()
        .map(|(i, h)| format!("{h:>width$}", width = widths[i]))
        .collect();
    println!("{}", header_line.join("  "));
    for row in rows {
        let line: Vec<String> = row
            .iter()
            .enumerate()
            .map(|(i, c)| format!("{c:>width$}", width = widths[i]))
            .collect();
        println!("{}", line.join("  "));
    }
}

/// Write rows as CSV under `target/figures/<name>.csv`.
pub fn write_csv(name: &str, headers: &[&str], rows: &[Vec<String>]) {
    let dir = std::path::Path::new("target/figures");
    if std::fs::create_dir_all(dir).is_err() {
        return;
    }
    let path = dir.join(format!("{name}.csv"));
    let Ok(mut file) = std::fs::File::create(&path) else {
        return;
    };
    let _ = writeln!(file, "{}", headers.join(","));
    for row in rows {
        let _ = writeln!(file, "{}", row.join(","));
    }
    println!("(csv written to {})", path.display());
}

/// Format ops/s in thousands with one decimal.
pub fn kops(v: f64) -> String {
    format!("{:.1}", v / 1000.0)
}

/// Format nanoseconds as microseconds.
pub fn us(nanos: u64) -> String {
    format!("{:.0}", nanos as f64 / 1000.0)
}

/// Format bytes as MB with one decimal.
pub fn mb(bytes: u64) -> String {
    format!("{:.1}", bytes as f64 / (1 << 20) as f64)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scaled_ops_respects_default() {
        assert_eq!(scaled_ops(100), 100);
    }

    #[test]
    fn profiles_cover_the_paper() {
        assert_eq!(fig13_profiles().len(), 7);
        assert_eq!(fig12a_profiles().len(), 5);
        assert_eq!(fig12b_profiles().len(), 5);
    }

    #[test]
    fn tiny_suite_runs_end_to_end() {
        let cfg = SuiteConfig {
            records: 2_000,
            ops: 500,
            value_len: 64,
            uniform: false,
            threads: 2,
        };
        let result = run_suite("BoLT", Options::bolt(), &cfg);
        assert_eq!(result.phases.len(), 8);
        assert_eq!(result.phases[0].phase, "LA");
        assert_eq!(result.phases.last().unwrap().phase, "E");
        for phase in &result.phases {
            assert!(phase.throughput > 0.0, "phase {}", phase.phase);
        }
        assert!(result.bytes_written > 0);
    }
}

//! **Figure 11** — Number of `fsync()` calls vs the group-compaction size
//! (write-only Load A), compared against stock LevelDB.
//!
//! The paper's shape: stock LevelDB calls fsync about twice as often as
//! BoLT with a 2 MB group (two 1 MB logical SSTables per compaction), and
//! the count keeps falling roughly linearly as the group grows to 64 MB —
//! which is why 64 MB is the default for all other experiments.
//!
//! Run: `cargo bench -p bolt-bench --bench fig11_group_size`

use bolt_bench::bolt_core::{CompactionStyle, Options};
use bolt_bench::bolt_ycsb::{load_db, BenchConfig};
use bolt_bench::{kops, open_db, print_table, scaled_ops, sim_env, write_csv};

fn run(label: &str, opts: Options, rows: &mut Vec<Vec<String>>) {
    let env = sim_env();
    let db = open_db(&env, opts);
    let cfg = BenchConfig {
        record_count: scaled_ops(40_000),
        op_count: 0,
        threads: 4,
        value_len: 256,
        seed: 11,
    };
    let result = load_db(&db, &cfg).expect("load");
    db.flush().expect("flush");
    db.compact_until_quiet().expect("settle");
    let io = env.stats().snapshot();
    rows.push(vec![
        label.to_string(),
        io.fsync_calls.to_string(),
        kops(result.throughput()),
        bolt_bench::mb(io.bytes_written),
    ]);
    db.close().expect("close");
}

fn main() {
    let mut rows = Vec::new();
    run("LevelDB", Options::leveldb(), &mut rows);
    for group_mb in [2u64, 4, 8, 16, 32, 64] {
        let mut opts = Options::bolt();
        if let CompactionStyle::Bolt(b) = &mut opts.compaction_style {
            b.group_compaction_bytes = group_mb << 20;
            // Isolate group compaction (as in the paper's GC sweep).
            b.settled_compaction = false;
            b.fd_cache = false;
        }
        run(&format!("GC{group_mb}MB"), opts, &mut rows);
    }

    let headers = ["config", "fsync_calls", "load_kops/s", "written_MB"];
    print_table(
        "Fig 11 — fsync calls vs group compaction size (Load A)",
        &headers,
        &rows,
    );
    write_csv("fig11_group_size", &headers, &rows);
    println!("\npaper shape: LevelDB ≈ 2× the fsyncs of GC2MB; count falls as the group grows.");
}

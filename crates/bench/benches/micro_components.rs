//! Criterion microbenchmarks of the engine's building blocks: skiplist,
//! bloom filter, block builder/reader, CRC32C, WAL append, memtable, and
//! the zipfian generator.
//!
//! Run: `cargo bench -p bolt-bench --bench micro_components`

use std::sync::Arc;

use criterion::{black_box, criterion_group, criterion_main, Criterion, Throughput};

use bolt_common::bloom::BloomFilterPolicy;
use bolt_common::crc32c;
use bolt_common::rng::Rng64;
use bolt_common::skiplist::SkipList;
use bolt_env::{Env, MemEnv};
use bolt_table::block::{Block, BlockBuilder};
use bolt_table::comparator::{BytewiseComparator, Comparator};
use bolt_wal::LogWriter;
use bolt_ycsb::generator::{KeyChooser, ScrambledZipfian};

fn bench_crc32c(c: &mut Criterion) {
    let data = vec![0xabu8; 64 * 1024];
    let mut group = c.benchmark_group("crc32c");
    group.throughput(Throughput::Bytes(data.len() as u64));
    group.bench_function("64KiB", |b| b.iter(|| crc32c::crc32c(black_box(&data))));
    group.finish();
}

fn bench_bloom(c: &mut Criterion) {
    let policy = BloomFilterPolicy::default();
    let keys: Vec<Vec<u8>> = (0..10_000u32)
        .map(|i| format!("user{i:019}").into_bytes())
        .collect();
    let refs: Vec<&[u8]> = keys.iter().map(|k| k.as_slice()).collect();
    let mut filter = Vec::new();
    policy.create_filter(&refs, &mut filter);

    let mut group = c.benchmark_group("bloom");
    group.bench_function("create_10k", |b| {
        b.iter(|| {
            let mut f = Vec::new();
            policy.create_filter(black_box(&refs), &mut f);
            f
        })
    });
    group.bench_function("probe", |b| {
        let mut i = 0u32;
        b.iter(|| {
            i = i.wrapping_add(1);
            policy.key_may_match(format!("user{i:019}").as_bytes(), black_box(&filter))
        })
    });
    group.finish();
}

fn bench_skiplist(c: &mut Criterion) {
    let mut group = c.benchmark_group("skiplist");
    group.bench_function("insert_10k", |b| {
        b.iter(|| {
            let list = SkipList::new(|a: &[u8], b: &[u8]| a.cmp(b));
            for i in 0..10_000u32 {
                list.insert(format!("key{i:08}").as_bytes());
            }
            list.len()
        })
    });
    let list = SkipList::new(|a: &[u8], b: &[u8]| a.cmp(b));
    for i in 0..100_000u32 {
        list.insert(format!("key{i:08}").as_bytes());
    }
    group.bench_function("contains_hit", |b| {
        let mut i = 0u32;
        b.iter(|| {
            i = (i + 7919) % 100_000;
            list.contains(format!("key{i:08}").as_bytes())
        })
    });
    group.finish();
}

fn bench_block(c: &mut Criterion) {
    let entries: Vec<(Vec<u8>, Vec<u8>)> = (0..1000u32)
        .map(|i| (format!("user/key/{i:08}").into_bytes(), vec![7u8; 100]))
        .collect();
    let mut group = c.benchmark_group("block");
    group.bench_function("build_1k_entries", |b| {
        b.iter(|| {
            let mut builder = BlockBuilder::new(16);
            for (k, v) in &entries {
                builder.add(k, v);
            }
            builder.finish()
        })
    });

    let mut builder = BlockBuilder::new(16);
    for (k, v) in &entries {
        builder.add(k, v);
    }
    let block = Arc::new(Block::new(builder.finish()).unwrap());
    let cmp: Arc<dyn Comparator> = Arc::new(BytewiseComparator);
    group.bench_function("seek", |b| {
        let mut i = 0u32;
        b.iter(|| {
            i = (i + 613) % 1000;
            let mut iter = block.iter(Arc::clone(&cmp));
            iter.seek(format!("user/key/{i:08}").as_bytes()).unwrap();
            iter.valid()
        })
    });
    group.finish();
}

fn bench_wal(c: &mut Criterion) {
    let mut group = c.benchmark_group("wal");
    let payload = vec![1u8; 1024];
    group.throughput(Throughput::Bytes(payload.len() as u64));
    group.bench_function("append_1KiB", |b| {
        let env = MemEnv::new();
        let mut writer = LogWriter::new(env.new_writable_file("log").unwrap());
        b.iter(|| writer.add_record(black_box(&payload)).unwrap())
    });
    group.finish();
}

fn bench_zipfian(c: &mut Criterion) {
    let mut group = c.benchmark_group("ycsb");
    group.bench_function("scrambled_zipfian", |b| {
        let mut gen = ScrambledZipfian::new(1_000_000);
        let mut rng = Rng64::new(3);
        b.iter(|| gen.next(&mut rng, 1_000_000))
    });
    group.finish();
}

/// Writer scaling through the group-commit pipeline: 1/2/4/8 concurrent
/// writers, synced and unsynced. With sync on, throughput should *rise*
/// with writers as batches share barriers (batches per group > 1).
fn bench_write_pipeline(c: &mut Criterion) {
    use bolt_core::{Db, Options, WriteBatch, WriteOptions};

    let mut group = c.benchmark_group("write_pipeline");
    for &threads in &[1usize, 2, 4, 8] {
        for &sync in &[false, true] {
            let id = format!("{threads}w_{}", if sync { "sync" } else { "nosync" });
            group.throughput(Throughput::Elements(1));
            group.bench_function(id, |b| {
                b.iter_custom(|iters| {
                    let env: Arc<dyn Env> = Arc::new(MemEnv::new());
                    let mut opts = Options::leveldb();
                    opts.memtable_bytes = 256 << 20; // keep flushes out of the timing
                    let db = Arc::new(Db::open(env, "bench-db", opts).unwrap());
                    let per_thread = (iters as usize).div_ceil(threads).max(1);
                    let start = std::time::Instant::now();
                    std::thread::scope(|scope| {
                        for t in 0..threads {
                            let db = Arc::clone(&db);
                            scope.spawn(move || {
                                let wopts = WriteOptions::with_sync(sync);
                                for i in 0..per_thread {
                                    let mut batch = WriteBatch::new();
                                    batch.put(format!("w{t}/k{i:08}").as_bytes(), &[b'v'; 100]);
                                    db.write_opt(batch, &wopts).unwrap();
                                }
                            });
                        }
                    });
                    let elapsed = start.elapsed();
                    db.close().unwrap();
                    elapsed
                });
            });
        }
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_crc32c,
    bench_bloom,
    bench_skiplist,
    bench_block,
    bench_wal,
    bench_zipfian,
    bench_write_pipeline
);
criterion_main!(benches);

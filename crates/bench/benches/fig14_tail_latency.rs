//! **Figure 14** — Tail-latency CDFs: (a) insertion latency under the
//! write-only Load A, (b) read latency under the read-only workload C,
//! across all seven systems.
//!
//! The paper's shape: BoLT's insertion tail beats LevelDB up to p99.5;
//! the Hyper family (no governors) shows the lowest insertion tail; on
//! reads, RocksDB's tail jumps at ~p98 from large-index TableCache misses.
//!
//! Run: `cargo bench -p bolt-bench --bench fig14_tail_latency`

use bolt_bench::{fig13_profiles, print_table, run_suite, us, write_csv, SuiteConfig};

const PCTS: [f64; 7] = [50.0, 90.0, 95.0, 99.0, 99.5, 99.9, 99.99];

fn main() {
    let cfg = SuiteConfig::default();
    let mut write_rows = Vec::new();
    let mut read_rows = Vec::new();
    for (name, opts) in fig13_profiles() {
        let result = run_suite(name, opts, &cfg);
        for (phase, run) in &result.op_results {
            let row_of = |hist: &bolt_common::histogram::Histogram| {
                let mut row = vec![name.to_string()];
                row.extend(PCTS.iter().map(|&p| us(hist.percentile(p))));
                row
            };
            if phase == "LA" {
                write_rows.push(row_of(&run.overall));
            } else if phase == "C" {
                read_rows.push(row_of(&run.overall));
            }
        }
    }
    let headers = [
        "system",
        "p50_us",
        "p90_us",
        "p95_us",
        "p99_us",
        "p99.5_us",
        "p99.9_us",
        "p99.99_us",
    ];
    print_table(
        "Fig 14(a) — insertion latency percentiles (Load A, 100% write)",
        &headers,
        &write_rows,
    );
    write_csv("fig14a_write_tail", &headers, &write_rows);
    print_table(
        "Fig 14(b) — read latency percentiles (workload C, 100% read)",
        &headers,
        &read_rows,
    );
    write_csv("fig14b_read_tail", &headers, &read_rows);
    println!(
        "\npaper shape: governor-driven ~1 ms insertion plateaus for LevelDB/BoLT/Rocks;\n\
         Hyper-family inserts have the lowest tail; Rocks reads spike past ~p98."
    );
}

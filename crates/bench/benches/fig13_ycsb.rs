//! **Figure 13** — YCSB throughput across all seven systems, with (a)
//! zipfian and (b) uniform request distributions (1 KB values).
//!
//! The paper's shape: PebblesDB wins the write-only loads (it avoids
//! merge work entirely), BoLT beats LevelDB ≈3.2× and LVL64MB on LA;
//! BoLT/HBoLT win or tie most mixed workloads; RocksDB's read throughput
//! is strong; LevelDB is the slowest writer.
//!
//! Run: `cargo bench -p bolt-bench --bench fig13_ycsb`

use bolt_bench::{fig13_profiles, kops, print_table, run_suite, write_csv, SuiteConfig};

fn run_part(part: &str, uniform: bool) {
    let cfg = SuiteConfig {
        uniform,
        ..SuiteConfig::default()
    };
    let mut rows = Vec::new();
    for (name, opts) in fig13_profiles() {
        let result = run_suite(name, opts, &cfg);
        let mut row = vec![name.to_string()];
        row.extend(result.phases.iter().map(|p| kops(p.throughput)));
        rows.push(row);
    }
    let headers = ["system", "LA", "A", "B", "C", "F", "D", "LE", "E"];
    let dist = if uniform { "uniform" } else { "zipfian" };
    print_table(
        &format!("Fig 13({part}) — YCSB throughput ({dist}), kops/s"),
        &headers,
        &rows,
    );
    write_csv(&format!("fig13{part}_ycsb_{dist}"), &headers, &rows);
}

fn main() {
    run_part("a", false);
    run_part("b", true);
    println!(
        "\npaper shape: Pebbles > BoLT > LVL64MB > LevelDB on the loads;\n\
         BoLT/HBoLT lead most mixed workloads; Rocks reads are strong."
    );
}

//! **Figure 15** — BoLT vs RocksDB on a database ~2× larger than memory,
//! with matched parameters (the paper sets BoLT's TableCache, L0 triggers
//! 20/36, and L1 = 256 MB equal to RocksDB's): (a) 1 KB records, zipfian;
//! (b) 1 KB records, uniform; (c) 10× as many small (100 B) records,
//! zipfian, where RocksDB's more compact SSTable format writes fewer
//! bytes.
//!
//! The paper's shape: BoLT wins the 1 KB loads by up to ~58 % and most
//! reads; RocksDB wins the small-record load (c) thanks to its record
//! format, and wins the scan-heavy E.
//!
//! Run: `cargo bench -p bolt-bench --bench fig15_bolt_vs_rocks`

use bolt_bench::bolt_core::Options;
use bolt_bench::{kops, mb, print_table, run_suite, scaled_ops, write_csv, SuiteConfig};

/// BoLT with the paper's §4.3.3 parameter matching.
fn bolt_matched() -> Options {
    let rocks = Options::rocksdb();
    let mut opts = Options::bolt();
    opts.max_open_files = rocks.max_open_files;
    opts.level0_slowdown_trigger = rocks.level0_slowdown_trigger; // 20
    opts.level0_stop_trigger = rocks.level0_stop_trigger; // 36
    opts.level1_max_bytes = rocks.level1_max_bytes; // 256 MB
    opts
}

fn run_part(part: &str, records: u64, value_len: usize, uniform: bool) {
    let cfg = SuiteConfig {
        records,
        ops: scaled_ops(10_000),
        value_len,
        uniform,
        threads: 4,
    };
    let mut rows = Vec::new();
    for (name, opts) in [("BoLT", bolt_matched()), ("Rocks", Options::rocksdb())] {
        let result = run_suite(name, opts, &cfg);
        let mut row = vec![name.to_string()];
        row.extend(result.phases.iter().map(|p| kops(p.throughput)));
        row.push(mb(result.bytes_written));
        rows.push(row);
    }
    let headers = [
        "system",
        "LA",
        "A",
        "B",
        "C",
        "F",
        "D",
        "LE",
        "E",
        "written_MB",
    ];
    let dist = if uniform { "uniform" } else { "zipfian" };
    print_table(
        &format!(
            "Fig 15({part}) — BoLT vs RocksDB, {records} x {value_len}B records ({dist}), kops/s"
        ),
        &headers,
        &rows,
    );
    write_csv(&format!("fig15{part}_bolt_vs_rocks"), &headers, &rows);
}

fn main() {
    // (a) large 1 KB-record database, zipfian.
    run_part("a", scaled_ops(40_000), 1024, false);
    // (b) same, uniform.
    run_part("b", scaled_ops(40_000), 1024, true);
    // (c) 10× as many small records, zipfian — the record-format effect.
    run_part("c", scaled_ops(200_000), 100, false);
    println!(
        "\npaper shape: BoLT wins the 1 KB loads (up to ~58%) and most reads;\n\
         Rocks writes fewer bytes in (c) (compact record format) and wins E."
    );
}

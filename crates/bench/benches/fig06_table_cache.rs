//! **Figure 6** — TableCache eviction overhead in the RocksDB profile:
//! point-query latency with 2 MB vs 64 MB SSTables under an insufficient
//! TableCache.
//!
//! The paper's shape: with 64 MB SSTables a TableCache miss re-reads a
//! ~1 MB index block, so ~25 % of queries see a much higher latency; with
//! 2 MB SSTables (and the *same* slot count) the miss penalty is ~30 KB and
//! the tail collapses.
//!
//! Run: `cargo bench -p bolt-bench --bench fig06_table_cache`

use std::sync::Arc;

use bolt_bench::bolt_core::{Db, Options};
use bolt_bench::bolt_ycsb::{key_name, load_db, BenchConfig};
use bolt_bench::{print_table, scaled_ops, sim_env, us, write_csv, CAPACITY_SCALE};
use bolt_common::histogram::Histogram;
use bolt_common::rng::Rng64;

fn run(label: &str, sstable_mb: u64, rows: &mut Vec<Vec<String>>) {
    let mut opts = Options::rocksdb();
    opts.sstable_bytes = sstable_mb << 20;
    opts.block_cache_bytes = 2 << 20; // small block cache, metadata dominates

    let records = scaled_ops(60_000);
    let env = sim_env();
    let db = Arc::new(
        Db::open(
            Arc::clone(&env),
            "bench-db",
            opts.clone().scaled(CAPACITY_SCALE),
        )
        .expect("open"),
    );
    let cfg = BenchConfig {
        record_count: records,
        op_count: 0,
        threads: 4,
        value_len: 256,
        seed: 6,
    };
    load_db(&db, &cfg).expect("load");
    db.flush().expect("flush");
    db.compact_until_quiet().expect("settle");

    // Model the paper's 8 GB memory cap: the TableCache may hold the same
    // *bytes* of metadata in both configurations, so the slot count is a
    // fixed fraction of the table count and the miss *rate* matches while
    // the miss *penalty* (index-block size) differs ~32x.
    let total_tables: usize = db.level_info().iter().map(|l| l.tables).sum();
    let slots = ((total_tables / 4).max(2)) as u64;
    db.close().expect("close");
    let mut opts2 = opts.scaled(CAPACITY_SCALE);
    opts2.max_open_files = slots;
    let db = Arc::new(Db::open(Arc::clone(&env), "bench-db", opts2).expect("reopen"));

    // Uniform point queries (worst case for caching).
    let queries = scaled_ops(20_000);
    let hist = Histogram::new();
    let mut rng = Rng64::new(66);
    let opens_before = db.table_cache().open_count();
    for _ in 0..queries {
        let key = key_name(rng.next_below(records));
        let t0 = std::time::Instant::now();
        let _ = db.get(&key).expect("get");
        hist.record(t0.elapsed().as_nanos() as u64);
    }
    let opens = db.table_cache().open_count() - opens_before;
    let info = db.level_info();
    let tables: usize = info.iter().map(|l| l.tables).sum();
    rows.push(vec![
        label.to_string(),
        tables.to_string(),
        opens.to_string(),
        us(hist.percentile(50.0)),
        us(hist.percentile(90.0)),
        us(hist.percentile(95.0)),
        us(hist.percentile(99.0)),
        us(hist.percentile(99.9)),
    ]);
    db.close().expect("close");
}

fn main() {
    let mut rows = Vec::new();
    run("2MB", 2, &mut rows);
    run("64MB", 64, &mut rows);

    let headers = [
        "sstable",
        "tables",
        "tcache_misses",
        "p50_us",
        "p90_us",
        "p95_us",
        "p99_us",
        "p99.9_us",
    ];
    print_table(
        "Fig 6 — RocksDB profile: point-query latency, 2MB vs 64MB SSTables, fixed TableCache slots",
        &headers,
        &rows,
    );
    write_csv("fig06_table_cache", &headers, &rows);
    println!("\npaper shape: 64MB SSTables show a far heavier tail (big index-block reloads).");
}

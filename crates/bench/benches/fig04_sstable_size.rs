//! **Figure 4** — Insertion performance of *stock LevelDB* with various
//! SSTable sizes (YCSB Load A).
//!
//! (a) number of `fsync()` calls; (b) insertion tail latency. The paper's
//! shape: fsync count decreases roughly linearly as the SSTable size grows,
//! and tail latency improves with it.
//!
//! Run: `cargo bench -p bolt-bench --bench fig04_sstable_size`

use bolt_bench::bolt_core::Options;
use bolt_bench::bolt_ycsb::{load_db, BenchConfig};
use bolt_bench::{kops, open_db, print_table, scaled_ops, sim_env, us, write_csv};

fn main() {
    // Paper sizes 2–64 MB, divided by the 1/64 capacity scale.
    let sizes_mb: [u64; 6] = [2, 4, 8, 16, 32, 64];
    let records = scaled_ops(40_000);

    let mut rows = Vec::new();
    for &size_mb in &sizes_mb {
        let mut opts = Options::leveldb();
        opts.sstable_bytes = size_mb << 20;
        let env = sim_env();
        let db = open_db(&env, opts);
        let cfg = BenchConfig {
            record_count: records,
            op_count: 0,
            threads: 4,
            value_len: 256,
            seed: 4,
        };
        let result = load_db(&db, &cfg).expect("load");
        db.flush().expect("flush");
        db.compact_until_quiet().expect("settle");
        let io = env.stats().snapshot();
        rows.push(vec![
            format!("{size_mb}MB"),
            io.fsync_calls.to_string(),
            kops(result.throughput()),
            us(result.percentile(95.0)),
            us(result.percentile(99.0)),
            us(result.percentile(99.9)),
            us(result.overall.max()),
        ]);
        db.close().expect("close");
    }

    let headers = [
        "sstable",
        "fsync_calls",
        "kops/s",
        "p95_us",
        "p99_us",
        "p99.9_us",
        "max_us",
    ];
    print_table(
        "Fig 4 — stock LevelDB, Load A: fsync count & insertion tail latency vs SSTable size",
        &headers,
        &rows,
    );
    write_csv("fig04_sstable_size", &headers, &rows);
    println!("\npaper shape: fsync calls fall ~linearly with SSTable size; tail latency improves.");
}

//! **Figure 12** — Quantifying the benefits of the BoLT designs: the
//! ablation ladder (stock → +LS → +GC → +STL → +FC) over the full YCSB
//! suite, (a) on the LevelDB profile and (b) on the HyperLevelDB profile,
//! plus the total-bytes-written inset.
//!
//! The paper's shape: `+LS` alone roughly matches stock LevelDB (small
//! compactions burn the fsync saving), `+GC` jumps ~2.5× on the loads,
//! `+STL` adds a further write reduction (~9.5 % fewer bytes), `+FC` helps
//! read-heavy phases; on HyperLevelDB `+LS` is the *worst* configuration.
//!
//! Run: `cargo bench -p bolt-bench --bench fig12_ablation`

use bolt_bench::{
    fig12a_profiles, fig12b_profiles, kops, mb, print_table, run_suite, write_csv, SuiteConfig,
};

fn run_part(part: &str, profiles: Vec<(&'static str, bolt_bench::bolt_core::Options)>) {
    let cfg = SuiteConfig::default();
    let mut rows = Vec::new();
    for (name, opts) in profiles {
        let result = run_suite(name, opts, &cfg);
        let mut row = vec![name.to_string()];
        row.extend(result.phases.iter().map(|p| kops(p.throughput)));
        row.push(mb(result.bytes_written));
        rows.push(row);
    }
    let headers = [
        "system",
        "LA",
        "A",
        "B",
        "C",
        "F",
        "D",
        "LE",
        "E",
        "written_MB",
    ];
    print_table(
        &format!("Fig 12({part}) — BoLT ablations, throughput in kops/s"),
        &headers,
        &rows,
    );
    write_csv(&format!("fig12{part}_ablation"), &headers, &rows);
}

fn main() {
    run_part("a", fig12a_profiles());
    run_part("b", fig12b_profiles());
    println!(
        "\npaper shape: +LS ≈ stock (fsync saving burned by small compactions);\n\
         +GC ≈ 2.5x on LA/LE; +STL trims total bytes written; +FC lifts reads.\n\
         On Hyper (b), +LS is the worst configuration."
    );
}

//! **Extension ablation** (paper §5, Related Work) — BarrierFS-style
//! ordering barriers vs BoLT.
//!
//! BarrierFS separates ordering from durability: data files only need an
//! `fbarrier()` before the MANIFEST commit, so stock LevelDB recovers most
//! of the *barrier* saving without changing its file layout. But, as the
//! paper argues, it cannot recover the *write-amplification* saving of
//! logical SSTables + settled compaction. This bench quantifies both
//! effects on the same workload.
//!
//! Run: `cargo bench -p bolt-bench --bench ablation_barrierfs`

use std::sync::Arc;

use bolt_bench::bolt_core::{Db, Options};
use bolt_bench::bolt_env::{Env, SimEnv};
use bolt_bench::bolt_ycsb::{load_db, BenchConfig};
use bolt_bench::{bench_device, kops, mb, print_table, scaled_ops, write_csv, CAPACITY_SCALE};

fn run(label: &str, mut opts: Options, barrierfs: bool, rows: &mut Vec<Vec<String>>) {
    let model = bench_device();
    let env: Arc<dyn Env> = if barrierfs {
        Arc::new(SimEnv::with_barrierfs(model))
    } else {
        Arc::new(SimEnv::new(model))
    };
    opts.use_ordering_barriers = barrierfs;
    let db = Arc::new(
        Db::open(Arc::clone(&env), "bench-db", opts.scaled(CAPACITY_SCALE)).expect("open"),
    );
    let cfg = BenchConfig {
        record_count: scaled_ops(40_000),
        op_count: 0,
        threads: 4,
        value_len: 256,
        seed: 5,
    };
    let result = load_db(&db, &cfg).expect("load");
    db.flush().expect("flush");
    db.compact_until_quiet().expect("settle");
    let io = env.stats().snapshot();
    rows.push(vec![
        label.to_string(),
        io.fsync_calls.to_string(),
        io.ordering_barriers.to_string(),
        mb(io.bytes_written),
        kops(result.throughput()),
    ]);
    db.close().expect("close");
}

fn main() {
    let mut rows = Vec::new();
    run("LevelDB", Options::leveldb(), false, &mut rows);
    run("LevelDB+BarrierFS", Options::leveldb(), true, &mut rows);
    run("BoLT", Options::bolt(), false, &mut rows);
    run("BoLT+BarrierFS", Options::bolt(), true, &mut rows);

    let headers = [
        "system",
        "fsync_calls",
        "ordering_barriers",
        "written_MB",
        "load_kops/s",
    ];
    print_table(
        "BarrierFS ablation — ordering-only barriers vs BoLT (Load A)",
        &headers,
        &rows,
    );
    write_csv("ablation_barrierfs", &headers, &rows);
    println!(
        "\npaper's argument: BarrierFS can cut LevelDB's durability barriers like BoLT\n\
         does, but only BoLT also cuts the bytes written (settled compaction)."
    );
}

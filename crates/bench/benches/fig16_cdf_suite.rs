//! **Figure 16** — Tail-latency CDFs of BoLT vs RocksDB for workloads A–F
//! on the large matched-parameter database of Fig 15.
//!
//! The paper's shape: for every workload RocksDB shows the heavier tail —
//! despite its highly concurrent synchronization — because TableCache
//! misses on its large (~1 MB) index blocks dominate, while BoLT reloads
//! ~30 KB per miss.
//!
//! Run: `cargo bench -p bolt-bench --bench fig16_cdf_suite`

use bolt_bench::bolt_core::Options;
use bolt_bench::{print_table, run_suite, scaled_ops, us, write_csv, SuiteConfig};

const PCTS: [f64; 6] = [50.0, 90.0, 95.0, 99.0, 99.9, 99.99];

fn bolt_matched() -> Options {
    let rocks = Options::rocksdb();
    let mut opts = Options::bolt();
    opts.max_open_files = rocks.max_open_files;
    opts.level0_slowdown_trigger = rocks.level0_slowdown_trigger;
    opts.level0_stop_trigger = rocks.level0_stop_trigger;
    opts.level1_max_bytes = rocks.level1_max_bytes;
    opts
}

fn main() {
    let cfg = SuiteConfig {
        records: scaled_ops(40_000),
        ops: scaled_ops(10_000),
        value_len: 1024,
        uniform: false,
        threads: 4,
    };

    let mut per_phase: std::collections::BTreeMap<String, Vec<Vec<String>>> = Default::default();
    for (name, opts) in [("BoLT", bolt_matched()), ("Rocks", Options::rocksdb())] {
        let result = run_suite(name, opts, &cfg);
        for (phase, run) in &result.op_results {
            if ["A", "B", "C", "D", "E", "F"].contains(&phase.as_str()) {
                let mut row = vec![name.to_string()];
                row.extend(PCTS.iter().map(|&p| us(run.overall.percentile(p))));
                per_phase.entry(phase.clone()).or_default().push(row);
            }
        }
    }

    let headers = [
        "system",
        "p50_us",
        "p90_us",
        "p95_us",
        "p99_us",
        "p99.9_us",
        "p99.99_us",
    ];
    for (phase, rows) in &per_phase {
        let title = match phase.as_str() {
            "A" => "Fig 16(a) — workload A (50% read, 50% write)",
            "B" => "Fig 16(b) — workload B (95% read)",
            "C" => "Fig 16(c) — workload C (100% read)",
            "D" => "Fig 16(d) — workload D (95% latest-read)",
            "E" => "Fig 16(e) — workload E (95% scan)",
            _ => "Fig 16(f) — workload F (50% RMW, 50% read)",
        };
        print_table(title, &headers, rows);
        write_csv(&format!("fig16_{phase}_cdf"), &headers, rows);
    }
    println!(
        "\npaper shape: RocksDB shows the heavier tail on every workload\n\
         (large index blocks on TableCache misses); BoLT's metadata is ~30 KB/table."
    );
}

//! **Future-work bench** — the paper's §4.1 closing claim: "we can replace
//! the LSM-tree implementation of RocksDB with BoLT to improve its
//! performance. We leave the application of BoLT in RocksDB as our future
//! work." Because every system here is a profile over one engine, that
//! future work is `Options::rocksbolt()` — RocksDB's sizing, triggers, and
//! compact record encoding with BoLT's compaction files, logical SSTables,
//! group + settled compaction, and fd cache.
//!
//! Run: `cargo bench -p bolt-bench --bench futurework_rocksbolt`

use bolt_bench::bolt_core::Options;
use bolt_bench::{kops, mb, print_table, run_suite, write_csv, SuiteConfig};

fn main() {
    let cfg = SuiteConfig::default();
    let mut rows = Vec::new();
    for (name, opts) in [
        ("Rocks", Options::rocksdb()),
        ("RocksBoLT", Options::rocksbolt()),
    ] {
        let result = run_suite(name, opts, &cfg);
        let mut row = vec![name.to_string()];
        row.extend(result.phases.iter().map(|p| kops(p.throughput)));
        row.push(result.io.fsync_calls.to_string());
        row.push(mb(result.bytes_written));
        rows.push(row);
    }
    let headers = [
        "system",
        "LA",
        "A",
        "B",
        "C",
        "F",
        "D",
        "LE",
        "E",
        "fsync",
        "written_MB",
    ];
    print_table(
        "Future work — BoLT mechanisms inside the RocksDB profile",
        &headers,
        &rows,
    );
    write_csv("futurework_rocksbolt", &headers, &rows);
    println!("\nthe paper's expectation: BoLT's barrier reduction carries over to RocksDB.");
}

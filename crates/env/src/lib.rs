//! # bolt-env
//!
//! The storage substrate for the BoLT LSM-tree workspace: a LevelDB-style
//! `Env` abstraction plus four implementations.
//!
//! * [`MemEnv`] — an in-memory filesystem with **crash injection** (unsynced
//!   bytes are lost, optionally with torn tails). Used by the correctness and
//!   recovery test suites. Reach for it whenever a test only cares about
//!   *what* survives a crash, not how long I/O takes.
//! * [`SimEnv`] — [`MemEnv`] plus an **SSD cost model**: buffered appends are
//!   nearly free, the device drains its write queue at a configured
//!   sequential bandwidth, and a durability barrier (`fsync`) blocks until
//!   the queue is empty plus a fixed barrier latency. This is the substitute
//!   for the paper's Samsung 860 EVO testbed; it makes barrier *frequency*
//!   the dominant write-side cost, exactly the effect the paper studies.
//!   Use it for benchmarks and any test that depends on barrier timing
//!   (e.g. group-commit batching under concurrency).
//! * [`RealEnv`] — `std::fs` with real `fsync`, and real
//!   `fallocate(FALLOC_FL_PUNCH_HOLE)` on Linux. Use it to validate the
//!   engine against an actual kernel and device.
//! * [`FaultEnv`] — a **deterministic fault-injection** wrapper over any
//!   [`CrashEnv`] ([`MemEnv`] or [`SimEnv`]). It numbers every
//!   durability-relevant operation (create, append, sync/barrier, rename,
//!   delete, hole punch) with a global op counter and executes a scripted
//!   [`FaultPlan`]. Use it to sweep crash points and error paths; see below.
//!
//! All implementations feed the [`IoStats`] counters (fsync calls, bytes
//! written/read, holes punched) that the benchmark harness reports.
//!
//! ## Fault-plan grammar
//!
//! A [`FaultPlan`] composes four primitives, each keyed off the global op
//! counter (or, for syncs, the sync ordinal):
//!
//! | primitive | effect |
//! |---|---|
//! | [`FaultPlan::crash_at_op`]`(k)` | op `k` does not execute; every later op (reads included) fails until [`FaultEnv::reset`] |
//! | [`FaultPlan::torn_crash_at_op`]`(k, keep)` | as above, but an append keeps a `keep`-byte prefix (short write) |
//! | [`FaultPlan::fail_sync`]`(n)` | the `n`-th sync/ordering barrier returns `EIO` once, no crash |
//! | [`FaultPlan::fail_op`]`(k)` | op `k` returns `EIO` once, no crash |
//!
//! The record/replay loop used by the crash-sweep harness:
//!
//! ```
//! use std::sync::Arc;
//! use bolt_env::{CrashConfig, Env, FaultEnv, FaultPlan};
//!
//! let env = FaultEnv::over_mem();
//! env.start_recording();
//! // ... run the workload, calling env.mark("phase") between phases ...
//! let trace = env.stop_recording();
//!
//! for k in 0..trace.len() as u64 {
//!     env.reset();
//!     // ... wipe/rebuild state, install the plan, re-run the workload ...
//!     env.set_plan(FaultPlan::new().crash_at_op(k));
//!     // ... the workload errors out at op k; drop the engine, then:
//!     env.crash_inner(CrashConfig::TornTail { seed: k });
//!     env.reset();
//!     // ... reopen and check recovery invariants ...
//! }
//! ```

#![warn(missing_docs)]

mod fault;
mod mem;
mod real;
mod sim;
mod stats;

pub use fault::{CrashEnv, FaultEnv, FaultPlan, OpKind, OpRecord};
pub use mem::{CrashConfig, MemEnv};
pub use real::RealEnv;
pub use sim::{precise_sleep, DeviceModel, SimEnv};
pub use stats::{IoSnapshot, IoStats};

use std::sync::Arc;

use bolt_common::{Error, Result};

/// A writable, append-only file handle.
///
/// Mirrors LevelDB's `WritableFile`: appends buffer in the page cache;
/// [`WritableFile::sync`] is the expensive durability barrier the paper
/// optimizes.
pub trait WritableFile: Send {
    /// Append `data` at the end of the file (buffered; not yet durable).
    ///
    /// # Errors
    ///
    /// Returns an I/O error from the underlying store.
    fn append(&mut self, data: &[u8]) -> Result<()>;

    /// Push any library-level buffer to the OS page cache (no durability).
    ///
    /// # Errors
    ///
    /// Returns an I/O error from the underlying store.
    fn flush(&mut self) -> Result<()>;

    /// Full durability barrier (`fsync`/`fdatasync`): blocks until every
    /// buffered byte of this file is on stable storage.
    ///
    /// # Errors
    ///
    /// Returns an I/O error from the underlying store.
    fn sync(&mut self) -> Result<()>;

    /// Ordering-only barrier (BarrierFS `fbarrier()`): guarantees that bytes
    /// appended before the call reach storage before bytes appended after
    /// it, *without* waiting for durability.
    ///
    /// The default falls back to [`WritableFile::sync`], which is what a
    /// legacy filesystem provides. Only environments with
    /// [`Env::supports_ordering_barrier`] make this cheaper.
    ///
    /// # Errors
    ///
    /// Returns an I/O error from the underlying store.
    fn ordering_barrier(&mut self) -> Result<()> {
        self.sync()
    }

    /// Current file length in bytes (all appended data, durable or not).
    fn len(&self) -> u64;

    /// `true` when no bytes have been appended.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// A read-only file handle supporting positional reads from many threads.
pub trait RandomAccessFile: Send + Sync {
    /// Read up to `len` bytes starting at `offset`; short reads happen only
    /// at end-of-file.
    ///
    /// # Errors
    ///
    /// Returns an I/O error if `offset` is beyond the end of the file or the
    /// underlying store fails.
    fn read(&self, offset: u64, len: usize) -> Result<Vec<u8>>;

    /// Total file length in bytes.
    fn len(&self) -> u64;

    /// `true` when the file is empty.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// The storage environment: file creation, deletion, renaming, directory
/// listing, hole punching, and I/O accounting.
///
/// Paths are plain UTF-8 strings with `/` separators in every
/// implementation, so engine code is identical over [`MemEnv`], [`SimEnv`],
/// and [`RealEnv`].
pub trait Env: Send + Sync {
    /// Create (or truncate) a file for appending.
    ///
    /// # Errors
    ///
    /// Returns an I/O error from the underlying store.
    fn new_writable_file(&self, path: &str) -> Result<Box<dyn WritableFile>>;

    /// Open an existing file for appending, preserving current contents
    /// (used to reopen the MANIFEST/WAL).
    ///
    /// # Errors
    ///
    /// Returns [`bolt_common::Error::NotFound`] if the file does not exist.
    fn new_appendable_file(&self, path: &str) -> Result<Box<dyn WritableFile>>;

    /// Open a file for positional reads.
    ///
    /// # Errors
    ///
    /// Returns [`bolt_common::Error::NotFound`] if the file does not exist.
    fn new_random_access_file(&self, path: &str) -> Result<Arc<dyn RandomAccessFile>>;

    /// `true` if `path` exists.
    fn file_exists(&self, path: &str) -> bool;

    /// Length of `path` in bytes.
    ///
    /// # Errors
    ///
    /// Returns [`bolt_common::Error::NotFound`] if the file does not exist.
    fn file_size(&self, path: &str) -> Result<u64>;

    /// Delete `path`.
    ///
    /// # Errors
    ///
    /// Returns [`bolt_common::Error::NotFound`] if the file does not exist.
    fn delete_file(&self, path: &str) -> Result<()>;

    /// Atomically rename `from` to `to`, replacing `to` if present.
    ///
    /// Rename is modeled as durable (journaling-filesystem semantics), which
    /// matches how LevelDB publishes the `CURRENT` pointer.
    ///
    /// # Errors
    ///
    /// Returns [`bolt_common::Error::NotFound`] if `from` does not exist.
    fn rename_file(&self, from: &str, to: &str) -> Result<()>;

    /// Create directory `path` and its parents (no-op where meaningless).
    ///
    /// # Errors
    ///
    /// Returns an I/O error from the underlying store.
    fn create_dir_all(&self, path: &str) -> Result<()>;

    /// List the file names (not full paths) directly inside directory `dir`.
    ///
    /// # Errors
    ///
    /// Returns an I/O error from the underlying store.
    fn list_dir(&self, dir: &str) -> Result<Vec<String>>;

    /// Deallocate `[offset, offset + len)` of `path`, keeping the file size
    /// unchanged (reads of the hole return zeros). This is how BoLT reclaims
    /// dead logical SSTables from compaction files without a barrier.
    ///
    /// # Errors
    ///
    /// Returns [`bolt_common::Error::NotFound`] if the file does not exist.
    fn punch_hole(&self, path: &str, offset: u64, len: u64) -> Result<()>;

    /// Make the immutable file `src` also reachable as `dst` — a hard link
    /// where the store supports one, a full copy otherwise. Checkpoints use
    /// this to publish SSTables and value-log segments into a checkpoint
    /// directory without rewriting their bytes.
    ///
    /// The default implementation copies and syncs `dst`, so linked content
    /// is durable on return in every implementation. Callers must only link
    /// files that are never appended to again (tables, sealed segments):
    /// with a true hard link, later writes through either name would alias.
    ///
    /// # Errors
    ///
    /// Returns [`bolt_common::Error::NotFound`] if `src` does not exist.
    fn link_file(&self, src: &str, dst: &str) -> Result<()> {
        let reader = self.new_random_access_file(src)?;
        let mut out = self.new_writable_file(dst)?;
        let len = reader.len();
        let mut offset = 0u64;
        while offset < len {
            let chunk = ((len - offset) as usize).min(1 << 20);
            let data = reader.read(offset, chunk)?;
            if data.is_empty() {
                break;
            }
            offset += data.len() as u64;
            out.append(&data)?;
        }
        out.sync()
    }

    /// Number of names (hard links) referencing `path`'s inode.
    ///
    /// The engine consults this before hole-punching: a count above one
    /// means another name — typically a checkpoint directory, possibly
    /// created before this process started — shares the bytes, and a punch
    /// through the shared inode would corrupt that copy.
    ///
    /// The default returns 1, which is correct for any environment using
    /// the default (copying) [`Env::link_file`]. Implementations that
    /// override `link_file` with true hard links MUST override this too,
    /// or linked files lose their punch protection after a restart.
    ///
    /// # Errors
    ///
    /// Returns [`bolt_common::Error::NotFound`] if the file does not exist.
    fn link_count(&self, path: &str) -> Result<u64> {
        if self.file_exists(path) {
            Ok(1)
        } else {
            Err(Error::NotFound)
        }
    }

    /// The I/O counters of this environment.
    fn stats(&self) -> &IoStats;

    /// Whether [`WritableFile::ordering_barrier`] is cheaper than a full
    /// sync here (the BarrierFS extension; `false` for legacy stacks).
    fn supports_ordering_barrier(&self) -> bool {
        false
    }
}

/// Join a directory and file name with a `/` separator.
pub fn join_path(dir: &str, name: &str) -> String {
    if dir.is_empty() {
        name.to_string()
    } else if dir.ends_with('/') {
        format!("{dir}{name}")
    } else {
        format!("{dir}/{name}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn join_path_variants() {
        assert_eq!(join_path("", "a"), "a");
        assert_eq!(join_path("d", "a"), "d/a");
        assert_eq!(join_path("d/", "a"), "d/a");
        assert_eq!(join_path("d/e", "a"), "d/e/a");
    }

    /// Generic conformance suite run against every Env implementation.
    pub(crate) fn env_conformance(env: &dyn Env) {
        env.create_dir_all("db").unwrap();

        // Writable file lifecycle.
        let mut f = env.new_writable_file("db/a.txt").unwrap();
        assert!(f.is_empty());
        f.append(b"hello ").unwrap();
        f.append(b"world").unwrap();
        assert_eq!(f.len(), 11);
        f.flush().unwrap();
        f.sync().unwrap();
        drop(f);

        assert!(env.file_exists("db/a.txt"));
        assert_eq!(env.file_size("db/a.txt").unwrap(), 11);

        // Random access reads.
        let r = env.new_random_access_file("db/a.txt").unwrap();
        assert_eq!(r.len(), 11);
        assert_eq!(r.read(0, 5).unwrap(), b"hello");
        assert_eq!(r.read(6, 5).unwrap(), b"world");
        assert_eq!(r.read(6, 100).unwrap(), b"world"); // short read at EOF
        assert!(r.read(100, 1).is_err());

        // Append to existing file.
        let mut f = env.new_appendable_file("db/a.txt").unwrap();
        f.append(b"!").unwrap();
        f.sync().unwrap();
        drop(f);
        assert_eq!(env.file_size("db/a.txt").unwrap(), 12);

        // Rename.
        env.rename_file("db/a.txt", "db/b.txt").unwrap();
        assert!(!env.file_exists("db/a.txt"));
        assert!(env.file_exists("db/b.txt"));
        assert!(env.rename_file("db/missing", "db/x").is_err());

        // Listing.
        let mut f = env.new_writable_file("db/c.txt").unwrap();
        f.append(b"x").unwrap();
        f.sync().unwrap();
        drop(f);
        let mut names = env.list_dir("db").unwrap();
        names.sort();
        assert_eq!(names, vec!["b.txt".to_string(), "c.txt".to_string()]);

        // Punch hole keeps size, zeros content.
        let mut f = env.new_writable_file("db/holey").unwrap();
        f.append(&[0xffu8; 8192]).unwrap();
        f.sync().unwrap();
        drop(f);
        env.punch_hole("db/holey", 1024, 4096).unwrap();
        assert_eq!(env.file_size("db/holey").unwrap(), 8192);
        let r = env.new_random_access_file("db/holey").unwrap();
        let data = r.read(0, 8192).unwrap();
        assert!(data[..1024].iter().all(|&b| b == 0xff));
        assert!(data[1024..5120].iter().all(|&b| b == 0));
        assert!(data[5120..].iter().all(|&b| b == 0xff));

        // Link: both names read the same (immutable) content, and deleting
        // one name leaves the other intact.
        env.create_dir_all("db/ckpt").unwrap();
        assert_eq!(env.link_count("db/b.txt").unwrap(), 1);
        env.link_file("db/b.txt", "db/ckpt/b.txt").unwrap();
        assert!(env.file_exists("db/b.txt"));
        assert!(env.file_exists("db/ckpt/b.txt"));
        assert_eq!(env.file_size("db/ckpt/b.txt").unwrap(), 12);
        // Hard-link envs report the shared inode through either name; an
        // env whose link_file copies reports 1 for both — both answers keep
        // punch suppression truthful.
        let links = env.link_count("db/b.txt").unwrap();
        assert_eq!(links, env.link_count("db/ckpt/b.txt").unwrap());
        assert!((1..=2).contains(&links));
        assert!(env.link_count("db/missing").is_err());
        let r = env.new_random_access_file("db/ckpt/b.txt").unwrap();
        assert_eq!(r.read(0, 12).unwrap(), b"hello world!");
        assert!(env.link_file("db/missing", "db/ckpt/missing").is_err());
        env.delete_file("db/b.txt").unwrap();
        assert!(env.file_exists("db/ckpt/b.txt"));
        assert_eq!(env.link_count("db/ckpt/b.txt").unwrap(), 1);
        assert_eq!(
            env.new_random_access_file("db/ckpt/b.txt")
                .unwrap()
                .read(0, 12)
                .unwrap(),
            b"hello world!"
        );
        env.link_file("db/ckpt/b.txt", "db/b.txt").unwrap();

        // Deletion.
        env.delete_file("db/c.txt").unwrap();
        assert!(!env.file_exists("db/c.txt"));
        assert!(env.delete_file("db/c.txt").is_err());

        // Stats recorded something.
        let snap = env.stats().snapshot();
        assert!(snap.fsync_calls >= 4);
        assert!(snap.bytes_written >= 12 + 8192);
    }

    #[test]
    fn mem_env_conformance() {
        env_conformance(&MemEnv::new());
    }

    #[test]
    fn sim_env_conformance() {
        env_conformance(&SimEnv::new(DeviceModel::fast_test()));
    }

    #[test]
    fn real_env_conformance() {
        let dir =
            std::env::temp_dir().join(format!("bolt-env-conformance-{}", std::process::id(),));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let env = RealEnv::new(dir.to_str().unwrap());
        env_conformance(&env);
        let _ = std::fs::remove_dir_all(&dir);
    }
}

//! Real-filesystem environment.
//!
//! [`RealEnv`] maps the [`Env`] abstraction onto `std::fs` with real
//! `fsync`/`fdatasync` barriers. On Linux, [`Env::punch_hole`] uses
//! `fallocate(FALLOC_FL_PUNCH_HOLE | FALLOC_FL_KEEP_SIZE)` — the same call
//! BoLT uses to reclaim dead logical SSTables; elsewhere it falls back to
//! overwriting the range with zeros (functionally equivalent, not
//! space-reclaiming).

use std::fs::{File, OpenOptions};
use std::io::Write;
use std::path::PathBuf;
use std::sync::Arc;
use std::time::Instant;

use bolt_common::{Error, Result};

use crate::stats::IoStats;
use crate::{Env, RandomAccessFile, WritableFile};

/// An [`Env`] over a real directory tree rooted at `root`.
pub struct RealEnv {
    root: PathBuf,
    stats: Arc<IoStats>,
}

impl std::fmt::Debug for RealEnv {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RealEnv").field("root", &self.root).finish()
    }
}

impl RealEnv {
    /// Create an environment whose paths are resolved relative to `root`.
    pub fn new(root: impl Into<PathBuf>) -> Self {
        RealEnv {
            root: root.into(),
            stats: Arc::new(IoStats::default()),
        }
    }

    fn resolve(&self, path: &str) -> PathBuf {
        self.root.join(path)
    }
}

struct RealWritableFile {
    file: File,
    len: u64,
    stats: Arc<IoStats>,
}

impl WritableFile for RealWritableFile {
    fn append(&mut self, data: &[u8]) -> Result<()> {
        self.file.write_all(data)?;
        self.len += data.len() as u64;
        self.stats.record_write(data.len() as u64);
        Ok(())
    }

    fn flush(&mut self) -> Result<()> {
        self.file.flush()?;
        Ok(())
    }

    fn sync(&mut self) -> Result<()> {
        let start = Instant::now();
        self.file.sync_data()?;
        self.stats.record_fsync(start.elapsed().as_nanos() as u64);
        Ok(())
    }

    fn len(&self) -> u64 {
        self.len
    }
}

struct RealRandomAccessFile {
    file: File,
    len: u64,
    stats: Arc<IoStats>,
}

impl RandomAccessFile for RealRandomAccessFile {
    fn read(&self, offset: u64, len: usize) -> Result<Vec<u8>> {
        if offset > self.len {
            return Err(Error::io(format!(
                "read offset {offset} beyond end of file ({})",
                self.len
            )));
        }
        let want = len.min((self.len - offset) as usize);
        let mut buf = vec![0u8; want];
        #[cfg(unix)]
        {
            use std::os::unix::fs::FileExt;
            let mut done = 0usize;
            while done < want {
                let n = self.file.read_at(&mut buf[done..], offset + done as u64)?;
                if n == 0 {
                    break;
                }
                done += n;
            }
            buf.truncate(done);
        }
        #[cfg(not(unix))]
        {
            use std::io::{Read, Seek, SeekFrom};
            let mut f = self.file.try_clone()?;
            f.seek(SeekFrom::Start(offset))?;
            let mut done = 0usize;
            while done < want {
                let n = f.read(&mut buf[done..])?;
                if n == 0 {
                    break;
                }
                done += n;
            }
            buf.truncate(done);
        }
        self.stats.record_read(buf.len() as u64);
        Ok(buf)
    }

    fn len(&self) -> u64 {
        self.len
    }
}

impl Env for RealEnv {
    fn new_writable_file(&self, path: &str) -> Result<Box<dyn WritableFile>> {
        let file = OpenOptions::new()
            .write(true)
            .create(true)
            .truncate(true)
            .open(self.resolve(path))?;
        self.stats.record_create();
        Ok(Box::new(RealWritableFile {
            file,
            len: 0,
            stats: Arc::clone(&self.stats),
        }))
    }

    fn new_appendable_file(&self, path: &str) -> Result<Box<dyn WritableFile>> {
        let full = self.resolve(path);
        if !full.exists() {
            return Err(Error::NotFound);
        }
        let file = OpenOptions::new().append(true).open(&full)?;
        let len = file.metadata()?.len();
        Ok(Box::new(RealWritableFile {
            file,
            len,
            stats: Arc::clone(&self.stats),
        }))
    }

    fn new_random_access_file(&self, path: &str) -> Result<Arc<dyn RandomAccessFile>> {
        let file = File::open(self.resolve(path))?;
        let len = file.metadata()?.len();
        Ok(Arc::new(RealRandomAccessFile {
            file,
            len,
            stats: Arc::clone(&self.stats),
        }))
    }

    fn file_exists(&self, path: &str) -> bool {
        self.resolve(path).exists()
    }

    fn file_size(&self, path: &str) -> Result<u64> {
        Ok(std::fs::metadata(self.resolve(path))?.len())
    }

    fn delete_file(&self, path: &str) -> Result<()> {
        std::fs::remove_file(self.resolve(path))?;
        self.stats.record_delete();
        Ok(())
    }

    fn rename_file(&self, from: &str, to: &str) -> Result<()> {
        std::fs::rename(self.resolve(from), self.resolve(to))?;
        Ok(())
    }

    // True hard links only where the link count is also observable
    // (`link_count` below); elsewhere the trait's copying default keeps
    // punch suppression truthful — a copy has no shared inode to protect.
    #[cfg(unix)]
    fn link_file(&self, src: &str, dst: &str) -> Result<()> {
        let src = self.resolve(src);
        if !src.exists() {
            return Err(Error::NotFound);
        }
        let dst = self.resolve(dst);
        // Replace a stale destination (e.g. a retried checkpoint) the way
        // rename does.
        if dst.exists() {
            std::fs::remove_file(&dst)?;
        }
        std::fs::hard_link(&src, &dst)?;
        Ok(())
    }

    #[cfg(unix)]
    fn link_count(&self, path: &str) -> Result<u64> {
        use std::os::unix::fs::MetadataExt;
        let full = self.resolve(path);
        if !full.exists() {
            return Err(Error::NotFound);
        }
        Ok(std::fs::metadata(full)?.nlink())
    }

    fn create_dir_all(&self, path: &str) -> Result<()> {
        std::fs::create_dir_all(self.resolve(path))?;
        Ok(())
    }

    fn list_dir(&self, dir: &str) -> Result<Vec<String>> {
        let mut names = Vec::new();
        for entry in std::fs::read_dir(self.resolve(dir))? {
            let entry = entry?;
            if entry.file_type()?.is_file() {
                if let Some(name) = entry.file_name().to_str() {
                    names.push(name.to_string());
                }
            }
        }
        Ok(names)
    }

    #[cfg(target_os = "linux")]
    fn punch_hole(&self, path: &str, offset: u64, len: u64) -> Result<()> {
        use std::os::unix::io::AsRawFd;
        let size = self.file_size(path)?;
        let start = offset.min(size);
        let effective = offset.saturating_add(len).min(size).saturating_sub(start);
        if effective == 0 {
            self.stats.record_punch_hole(0);
            return Ok(());
        }
        // Local declaration of the glibc symbol (the build has no `libc`
        // crate). `off_t` is i64 on every 64-bit Linux target.
        const FALLOC_FL_KEEP_SIZE: i32 = 0x01;
        const FALLOC_FL_PUNCH_HOLE: i32 = 0x02;
        const EOPNOTSUPP: i32 = 95;
        extern "C" {
            fn fallocate(fd: i32, mode: i32, offset: i64, len: i64) -> i32;
        }

        let file = OpenOptions::new().write(true).open(self.resolve(path))?;
        // SAFETY: valid fd, flags and range are well-formed.
        let ret = unsafe {
            fallocate(
                file.as_raw_fd(),
                FALLOC_FL_PUNCH_HOLE | FALLOC_FL_KEEP_SIZE,
                start as i64,
                effective as i64,
            )
        };
        if ret != 0 {
            let errno = std::io::Error::last_os_error();
            // Filesystems without hole support (e.g. some tmpfs configs):
            // fall back to zeroing.
            if errno.raw_os_error() == Some(EOPNOTSUPP) {
                zero_range(&file, start, effective)?;
            } else {
                return Err(errno.into());
            }
        }
        self.stats.record_punch_hole(effective);
        Ok(())
    }

    #[cfg(not(target_os = "linux"))]
    fn punch_hole(&self, path: &str, offset: u64, len: u64) -> Result<()> {
        let size = self.file_size(path)?;
        let start = offset.min(size);
        let effective = offset.saturating_add(len).min(size).saturating_sub(start);
        let file = OpenOptions::new().write(true).open(self.resolve(path))?;
        zero_range(&file, start, effective)?;
        self.stats.record_punch_hole(effective);
        Ok(())
    }

    fn stats(&self) -> &IoStats {
        &self.stats
    }
}

/// Overwrite `[offset, offset+len)` with zeros (hole-punch fallback).
fn zero_range(file: &File, offset: u64, len: u64) -> Result<()> {
    use std::io::{Seek, SeekFrom, Write};
    let mut f = file.try_clone()?;
    f.seek(SeekFrom::Start(offset))?;
    let zeros = [0u8; 8192];
    let mut remaining = len;
    while remaining > 0 {
        let n = remaining.min(zeros.len() as u64) as usize;
        f.write_all(&zeros[..n])?;
        remaining -= n as u64;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_env(tag: &str) -> (RealEnv, PathBuf) {
        let dir = std::env::temp_dir().join(format!("bolt-realenv-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        (RealEnv::new(&dir), dir)
    }

    #[test]
    fn punch_hole_reclaims_or_zeroes() {
        let (env, dir) = temp_env("punch");
        let mut f = env.new_writable_file("data").unwrap();
        f.append(&[0xaa; 64 * 1024]).unwrap();
        f.sync().unwrap();
        drop(f);
        env.punch_hole("data", 4096, 8192).unwrap();
        assert_eq!(env.file_size("data").unwrap(), 64 * 1024);
        let r = env.new_random_access_file("data").unwrap();
        let data = r.read(4096, 8192).unwrap();
        assert!(data.iter().all(|&b| b == 0));
        let edge = r.read(0, 4096).unwrap();
        assert!(edge.iter().all(|&b| b == 0xaa));
        let _ = std::fs::remove_dir_all(dir);
    }

    #[test]
    fn fsync_records_wait_time() {
        let (env, dir) = temp_env("fsync");
        let mut f = env.new_writable_file("w").unwrap();
        f.append(b"payload").unwrap();
        f.sync().unwrap();
        assert_eq!(env.stats().fsync_calls(), 1);
        let _ = std::fs::remove_dir_all(dir);
    }

    #[test]
    fn appendable_requires_existing() {
        let (env, dir) = temp_env("appendable");
        assert!(matches!(
            env.new_appendable_file("nope"),
            Err(Error::NotFound)
        ));
        let _ = std::fs::remove_dir_all(dir);
    }
}

//! Deterministic fault injection over a crashable environment.
//!
//! [`FaultEnv`] wraps any [`CrashEnv`] (in practice [`MemEnv`] or
//! [`SimEnv`]) and assigns every **durability-relevant operation** — file
//! create, append, sync, ordering barrier, rename, delete, hole punch — a
//! global, monotonically increasing *op index*. A scripted [`FaultPlan`]
//! then turns chosen indices into failures:
//!
//! * **crash-at-op-K** — op `K` does not execute; the environment enters a
//!   *crashed* state in which every subsequent operation (including reads)
//!   fails, freezing the inner filesystem exactly as a power failure would.
//!   The harness then drops the engine, applies
//!   [`FaultEnv::crash_inner`] to discard unsynced bytes, calls
//!   [`FaultEnv::reset`], and reopens to test recovery.
//! * **torn append** — like crash-at-op-K on an append, but a prefix of the
//!   payload reaches the file first (a short write).
//! * **EIO on the Nth sync** — the Nth durability barrier returns an I/O
//!   error *once*, without crashing, to test error propagation.
//! * **EIO on op K** — same, keyed by global op index.
//! * **path-scoped clauses** — `eio:sync:glob=MANIFEST-*:nth=2`-style
//!   rules keyed by `(op kind, path glob, per-rule ordinal)` instead of a
//!   global index, so a plan survives workload drift; see
//!   [`FaultPlan::parse`].
//!
//! A harness first *records* a workload (op trace + [`FaultEnv::mark`]
//! phase markers), then replays it crashing at every interesting index.
//! See `bolt-tools`' crash-sweep harness and `tests/crash_sweep.rs`.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::Mutex;

use bolt_common::{Error, Result};

use crate::stats::IoStats;
use crate::{CrashConfig, Env, MemEnv, RandomAccessFile, SimEnv, WritableFile};

/// An [`Env`] that can simulate a whole-filesystem power failure.
///
/// [`MemEnv`] and [`SimEnv`] implement this; [`RealEnv`](crate::RealEnv)
/// cannot (we do not power-cycle the host).
pub trait CrashEnv: Env {
    /// Discard unsynced state as a power failure would; see
    /// [`MemEnv::crash`].
    fn crash(&self, config: CrashConfig);
}

impl CrashEnv for MemEnv {
    fn crash(&self, config: CrashConfig) {
        MemEnv::crash(self, config);
    }
}

impl CrashEnv for SimEnv {
    fn crash(&self, config: CrashConfig) {
        SimEnv::crash(self, config);
    }
}

/// The kind of a counted durability-relevant operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum OpKind {
    /// `new_writable_file` (create or truncate).
    Create,
    /// `WritableFile::append`.
    Append,
    /// `WritableFile::sync` (full durability barrier).
    Sync,
    /// `WritableFile::ordering_barrier`.
    OrderingBarrier,
    /// `rename_file`.
    Rename,
    /// `link_file`.
    Link,
    /// `delete_file`.
    Delete,
    /// `punch_hole`.
    PunchHole,
}

impl OpKind {
    /// Short lowercase label, used in traces and sweep reports.
    pub fn label(self) -> &'static str {
        match self {
            OpKind::Create => "create",
            OpKind::Append => "append",
            OpKind::Sync => "sync",
            OpKind::OrderingBarrier => "barrier",
            OpKind::Rename => "rename",
            OpKind::Link => "link",
            OpKind::Delete => "delete",
            OpKind::PunchHole => "punch",
        }
    }
}

/// One counted operation in a recorded trace.
#[derive(Debug, Clone)]
pub struct OpRecord {
    /// Global op index (0-based).
    pub index: u64,
    /// Operation kind.
    pub kind: OpKind,
    /// Path the operation targeted.
    pub path: String,
    /// Payload size in bytes (appends only; 0 otherwise).
    pub bytes: u64,
}

/// Which op kinds a path-scoped fault clause targets. `Sync` matches both
/// full syncs and ordering barriers — from the plan's point of view either
/// is "the durability barrier on this file".
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PathKind {
    /// `new_writable_file`.
    Create,
    /// `WritableFile::append`.
    Append,
    /// `WritableFile::sync` *or* `ordering_barrier`.
    Sync,
    /// `rename_file` (keyed by the source path).
    Rename,
    /// `link_file` (keyed by the destination path).
    Link,
    /// `delete_file`.
    Delete,
    /// `punch_hole`.
    Punch,
}

impl PathKind {
    fn matches(self, op: OpKind) -> bool {
        match self {
            PathKind::Create => op == OpKind::Create,
            PathKind::Append => op == OpKind::Append,
            PathKind::Sync => matches!(op, OpKind::Sync | OpKind::OrderingBarrier),
            PathKind::Rename => op == OpKind::Rename,
            PathKind::Link => op == OpKind::Link,
            PathKind::Delete => op == OpKind::Delete,
            PathKind::Punch => op == OpKind::PunchHole,
        }
    }

    fn label(self) -> &'static str {
        match self {
            PathKind::Create => "create",
            PathKind::Append => "append",
            PathKind::Sync => "sync",
            PathKind::Rename => "rename",
            PathKind::Link => "link",
            PathKind::Delete => "delete",
            PathKind::Punch => "punch",
        }
    }

    fn parse(s: &str) -> std::result::Result<Self, String> {
        Ok(match s {
            "create" => PathKind::Create,
            "append" => PathKind::Append,
            "sync" => PathKind::Sync,
            "rename" => PathKind::Rename,
            "link" => PathKind::Link,
            "delete" => PathKind::Delete,
            "punch" => PathKind::Punch,
            other => return Err(format!("unknown op kind `{other}`")),
        })
    }
}

#[derive(Debug, Clone)]
enum PathMode {
    Eio,
    Crash { keep: u64 },
}

/// One path-scoped clause: fire on the `nth` (0-based) op of `kind` whose
/// path matches `glob`.
#[derive(Debug, Clone)]
struct PathRule {
    kind: PathKind,
    glob: String,
    nth: u64,
    mode: PathMode,
    /// Matching ops seen so far (the per-rule ordinal counter).
    seen: u64,
}

/// `*`/`?` wildcard match. Patterns without `/` match the path's basename;
/// patterns containing `/` match the full path.
fn glob_match(pattern: &str, path: &str) -> bool {
    let target = if pattern.contains('/') {
        path
    } else {
        path.rsplit('/').next().unwrap_or(path)
    };
    let (p, s) = (pattern.as_bytes(), target.as_bytes());
    let (mut pi, mut si) = (0usize, 0usize);
    let mut star: Option<usize> = None;
    let mut mark = 0usize;
    while si < s.len() {
        if pi < p.len() && (p[pi] == b'?' || p[pi] == s[si]) {
            pi += 1;
            si += 1;
        } else if pi < p.len() && p[pi] == b'*' {
            star = Some(pi);
            mark = si;
            pi += 1;
        } else if let Some(sp) = star {
            pi = sp + 1;
            mark += 1;
            si = mark;
        } else {
            return false;
        }
    }
    while pi < p.len() && p[pi] == b'*' {
        pi += 1;
    }
    pi == p.len()
}

/// A scripted set of faults, keyed by global op index, sync ordinal, or a
/// path-scoped `(kind, glob, nth)` clause.
///
/// Build with the fluent methods (or [`FaultPlan::parse`]) and install via
/// [`FaultEnv::set_plan`]. The grammar:
///
/// * [`FaultPlan::crash_at_op`] — power failure *instead of* executing op
///   `K`; everything after fails until [`FaultEnv::reset`].
/// * [`FaultPlan::torn_crash_at_op`] — same, but if op `K` is an append,
///   `keep` bytes of its payload reach the file first.
/// * [`FaultPlan::fail_sync`] — the `n`-th (0-based) sync/ordering barrier
///   returns `EIO` once; later syncs succeed.
/// * [`FaultPlan::fail_op`] — op `K` returns `EIO` once; later ops succeed.
/// * [`FaultPlan::eio_on_path`] / [`FaultPlan::crash_on_path`] /
///   [`FaultPlan::torn_crash_on_path`] — path-scoped: the `nth` (0-based)
///   op of a kind whose path matches a glob. Robust against op-index drift
///   when the workload changes: `eio:sync:glob=MANIFEST-*:nth=0` targets
///   "the first MANIFEST barrier" regardless of how many WAL or table ops
///   precede it.
#[derive(Debug, Clone, Default)]
pub struct FaultPlan {
    crash_at: Option<u64>,
    torn_keep: u64,
    fail_ops: Vec<u64>,
    fail_syncs: Vec<u64>,
    path_rules: Vec<PathRule>,
}

impl FaultPlan {
    /// An empty plan (no faults).
    pub fn new() -> Self {
        Self::default()
    }

    /// Crash instead of executing the op with global index `k`.
    #[must_use]
    pub fn crash_at_op(mut self, k: u64) -> Self {
        self.crash_at = Some(k);
        self
    }

    /// Crash at op `k`; if it is an append, keep the first `keep` bytes of
    /// its payload (a short/torn write).
    #[must_use]
    pub fn torn_crash_at_op(mut self, k: u64, keep: u64) -> Self {
        self.crash_at = Some(k);
        self.torn_keep = keep;
        self
    }

    /// Return `EIO` from the `n`-th (0-based) sync or ordering barrier.
    #[must_use]
    pub fn fail_sync(mut self, n: u64) -> Self {
        self.fail_syncs.push(n);
        self
    }

    /// Return `EIO` from the op with global index `k`.
    #[must_use]
    pub fn fail_op(mut self, k: u64) -> Self {
        self.fail_ops.push(k);
        self
    }

    /// Return `EIO` (once) from the `nth` (0-based) op of `kind` whose path
    /// matches `glob`.
    #[must_use]
    pub fn eio_on_path(mut self, kind: PathKind, glob: &str, nth: u64) -> Self {
        self.path_rules.push(PathRule {
            kind,
            glob: glob.to_string(),
            nth,
            mode: PathMode::Eio,
            seen: 0,
        });
        self
    }

    /// Crash instead of executing the `nth` (0-based) op of `kind` whose
    /// path matches `glob`.
    #[must_use]
    pub fn crash_on_path(mut self, kind: PathKind, glob: &str, nth: u64) -> Self {
        self.path_rules.push(PathRule {
            kind,
            glob: glob.to_string(),
            nth,
            mode: PathMode::Crash { keep: 0 },
            seen: 0,
        });
        self
    }

    /// Like [`FaultPlan::crash_on_path`], but if the matched op is an
    /// append, `keep` bytes of its payload reach the file first.
    #[must_use]
    pub fn torn_crash_on_path(mut self, kind: PathKind, glob: &str, nth: u64, keep: u64) -> Self {
        self.path_rules.push(PathRule {
            kind,
            glob: glob.to_string(),
            nth,
            mode: PathMode::Crash { keep },
            seen: 0,
        });
        self
    }

    /// Parse a plan from clause text: whitespace/comma-separated clauses of
    /// the form `[MODE:]KIND:glob=G:nth=N`, where `MODE` is `eio` (default),
    /// `crash`, or `torn=K` (crash keeping `K` bytes of a torn append) and
    /// `KIND` is `create|append|sync|rename|delete|punch` (`sync` also
    /// matches ordering barriers). Example: `eio:sync:glob=MANIFEST-*:nth=2`.
    pub fn parse(spec: &str) -> std::result::Result<Self, String> {
        let mut plan = FaultPlan::new();
        for clause in spec.split([',', ' ', '\t', '\n']).filter(|c| !c.is_empty()) {
            plan = plan.parse_clause(clause)?;
        }
        Ok(plan)
    }

    fn parse_clause(self, clause: &str) -> std::result::Result<Self, String> {
        let fields: Vec<&str> = clause.split(':').collect();
        let bad = |what: &str| format!("bad clause `{clause}`: {what}");
        let (mode, rest) = match fields.first().copied() {
            Some("eio") => (PathMode::Eio, &fields[1..]),
            Some("crash") => (PathMode::Crash { keep: 0 }, &fields[1..]),
            Some(f) if f.starts_with("torn=") => {
                let keep = f["torn=".len()..]
                    .parse::<u64>()
                    .map_err(|_| bad("torn= wants a byte count"))?;
                (PathMode::Crash { keep }, &fields[1..])
            }
            _ => (PathMode::Eio, &fields[..]),
        };
        let &[kind, glob, nth] = rest else {
            return Err(bad("expected [MODE:]KIND:glob=G:nth=N"));
        };
        let kind = PathKind::parse(kind).map_err(|e| bad(&e))?;
        let glob = glob
            .strip_prefix("glob=")
            .ok_or_else(|| bad("second field must be glob=G"))?;
        let nth = nth
            .strip_prefix("nth=")
            .and_then(|n| n.parse::<u64>().ok())
            .ok_or_else(|| bad("third field must be nth=N"))?;
        let mut plan = self;
        plan.path_rules.push(PathRule {
            kind,
            glob: glob.to_string(),
            nth,
            mode,
            seen: 0,
        });
        Ok(plan)
    }

    /// Merge `other` into this plan: fault clauses accumulate, while
    /// `other`'s crash point (if any) replaces this plan's. Path-rule `seen`
    /// counters are preserved on both sides, so a workload can arm extra
    /// faults mid-run without disturbing an already-ticking harness plan.
    #[must_use]
    pub fn merged(mut self, other: FaultPlan) -> Self {
        if other.crash_at.is_some() {
            self.crash_at = other.crash_at;
            self.torn_keep = other.torn_keep;
        }
        self.fail_ops.extend(other.fail_ops);
        self.fail_syncs.extend(other.fail_syncs);
        self.path_rules.extend(other.path_rules);
        self
    }
}

#[derive(Default)]
struct Recording {
    plan: FaultPlan,
    recording: bool,
    trace: Vec<OpRecord>,
    markers: Vec<(u64, String)>,
}

struct FaultState {
    op_counter: AtomicU64,
    sync_counter: AtomicU64,
    crashed: AtomicBool,
    faults_injected: AtomicU64,
    script: Mutex<Recording>,
}

/// What a counted op should do after consulting the plan.
enum Decision {
    Proceed,
    Fail(Error),
    /// Append only the first `n` bytes, then fail (torn write).
    Torn(usize),
}

impl FaultState {
    fn new() -> Self {
        FaultState {
            op_counter: AtomicU64::new(0),
            sync_counter: AtomicU64::new(0),
            crashed: AtomicBool::new(false),
            faults_injected: AtomicU64::new(0),
            script: Mutex::new(Recording::default()),
        }
    }

    fn crash_error() -> Error {
        Error::io("fault: environment crashed")
    }

    fn check_crashed(&self) -> Result<()> {
        if self.crashed.load(Ordering::SeqCst) {
            Err(Self::crash_error())
        } else {
            Ok(())
        }
    }

    /// Count one durability-relevant op and decide its fate.
    fn before_op(&self, kind: OpKind, path: &str, bytes: u64) -> Decision {
        if self.crashed.load(Ordering::SeqCst) {
            return Decision::Fail(Self::crash_error());
        }
        let index = self.op_counter.fetch_add(1, Ordering::SeqCst);
        let sync_index = if matches!(kind, OpKind::Sync | OpKind::OrderingBarrier) {
            Some(self.sync_counter.fetch_add(1, Ordering::SeqCst))
        } else {
            None
        };
        let mut script = self.script.lock();
        if script.recording {
            script.trace.push(OpRecord {
                index,
                kind,
                path: path.to_string(),
                bytes,
            });
        }
        if script.plan.crash_at == Some(index) {
            self.crashed.store(true, Ordering::SeqCst);
            self.faults_injected.fetch_add(1, Ordering::SeqCst);
            let keep = script.plan.torn_keep.min(bytes) as usize;
            if kind == OpKind::Append && keep > 0 {
                return Decision::Torn(keep);
            }
            return Decision::Fail(Self::crash_error());
        }
        if script.plan.fail_ops.contains(&index) {
            self.faults_injected.fetch_add(1, Ordering::SeqCst);
            return Decision::Fail(Error::io(format!(
                "fault: injected EIO at op {index} ({} {path})",
                kind.label()
            )));
        }
        if let Some(s) = sync_index {
            if script.plan.fail_syncs.contains(&s) {
                self.faults_injected.fetch_add(1, Ordering::SeqCst);
                return Decision::Fail(Error::io(format!(
                    "fault: injected EIO at sync {s} ({path})"
                )));
            }
        }
        for rule in &mut script.plan.path_rules {
            if !rule.kind.matches(kind) || !glob_match(&rule.glob, path) {
                continue;
            }
            let seen = rule.seen;
            rule.seen += 1;
            if seen != rule.nth {
                continue;
            }
            self.faults_injected.fetch_add(1, Ordering::SeqCst);
            match rule.mode {
                PathMode::Eio => {
                    return Decision::Fail(Error::io(format!(
                        "fault: injected EIO at {} #{seen} matching `{}` ({path})",
                        rule.kind.label(),
                        rule.glob
                    )));
                }
                PathMode::Crash { keep } => {
                    self.crashed.store(true, Ordering::SeqCst);
                    let keep = keep.min(bytes) as usize;
                    if kind == OpKind::Append && keep > 0 {
                        return Decision::Torn(keep);
                    }
                    return Decision::Fail(Self::crash_error());
                }
            }
        }
        Decision::Proceed
    }
}

/// A fault-injecting [`Env`] layered over a [`CrashEnv`].
///
/// All file data lives in the wrapped environment; `FaultEnv` only counts
/// operations, consults the installed [`FaultPlan`], and (optionally)
/// records an op trace. Cloning is cheap and shares all state.
#[derive(Clone)]
pub struct FaultEnv {
    inner: Arc<dyn CrashEnv>,
    state: Arc<FaultState>,
}

impl std::fmt::Debug for FaultEnv {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FaultEnv")
            .field("op_count", &self.op_count())
            .field("crashed", &self.crashed())
            .finish()
    }
}

impl FaultEnv {
    /// Wrap `inner` with fault injection (no plan installed yet).
    pub fn new(inner: Arc<dyn CrashEnv>) -> Self {
        FaultEnv {
            inner,
            state: Arc::new(FaultState::new()),
        }
    }

    /// Convenience: a `FaultEnv` over a fresh [`MemEnv`].
    pub fn over_mem() -> Self {
        Self::new(Arc::new(MemEnv::new()))
    }

    /// Install `plan`, replacing any previous plan. Counters are *not*
    /// reset; call [`FaultEnv::reset`] first to re-run a workload.
    pub fn set_plan(&self, plan: FaultPlan) {
        self.state.script.lock().plan = plan;
    }

    /// Merge `plan` into the installed plan (see [`FaultPlan::merged`])
    /// without resetting counters or clobbering an armed crash point's
    /// progress. Path-rule ordinals in `plan` count from this call: with a
    /// fresh `nth=0` MANIFEST rule, the *next* matching op fails.
    pub fn extend_plan(&self, plan: FaultPlan) {
        let mut script = self.state.script.lock();
        let current = std::mem::take(&mut script.plan);
        script.plan = current.merged(plan);
    }

    /// Start recording an op trace (clears any previous trace).
    pub fn start_recording(&self) {
        let mut script = self.state.script.lock();
        script.recording = true;
        script.trace.clear();
        script.markers.clear();
    }

    /// Stop recording and return the trace.
    pub fn stop_recording(&self) -> Vec<OpRecord> {
        let mut script = self.state.script.lock();
        script.recording = false;
        script.trace.clone()
    }

    /// Record a named phase marker at the current op index, e.g.
    /// `"flush-done"`. Markers let a sweep report which workload phase a
    /// crash point falls in.
    pub fn mark(&self, label: &str) {
        let at = self.state.op_counter.load(Ordering::SeqCst);
        self.state
            .script
            .lock()
            .markers
            .push((at, label.to_string()));
    }

    /// Phase markers recorded so far, as `(op_index, label)` pairs.
    pub fn markers(&self) -> Vec<(u64, String)> {
        self.state.script.lock().markers.clone()
    }

    /// Total counted ops so far.
    pub fn op_count(&self) -> u64 {
        self.state.op_counter.load(Ordering::SeqCst)
    }

    /// Total sync/ordering-barrier ops so far.
    pub fn sync_count(&self) -> u64 {
        self.state.sync_counter.load(Ordering::SeqCst)
    }

    /// Number of faults the plan has injected so far.
    pub fn faults_injected(&self) -> u64 {
        self.state.faults_injected.load(Ordering::SeqCst)
    }

    /// `true` once a crash fault has fired (all ops now fail).
    pub fn crashed(&self) -> bool {
        self.state.crashed.load(Ordering::SeqCst)
    }

    /// Apply a power failure to the wrapped environment (discarding its
    /// unsynced bytes). Call after the engine using this env is dropped.
    pub fn crash_inner(&self, config: CrashConfig) {
        self.inner.crash(config);
    }

    /// Clear the crashed flag, plan, counters, trace, and markers so the
    /// surviving files can be reopened for recovery.
    pub fn reset(&self) {
        self.state.crashed.store(false, Ordering::SeqCst);
        self.state.op_counter.store(0, Ordering::SeqCst);
        self.state.sync_counter.store(0, Ordering::SeqCst);
        self.state.faults_injected.store(0, Ordering::SeqCst);
        let mut script = self.state.script.lock();
        script.plan = FaultPlan::default();
        script.recording = false;
        script.trace.clear();
        script.markers.clear();
    }
}

struct FaultWritableFile {
    inner: Box<dyn WritableFile>,
    state: Arc<FaultState>,
    path: String,
}

impl WritableFile for FaultWritableFile {
    fn append(&mut self, data: &[u8]) -> Result<()> {
        match self
            .state
            .before_op(OpKind::Append, &self.path, data.len() as u64)
        {
            Decision::Proceed => self.inner.append(data),
            Decision::Fail(e) => Err(e),
            Decision::Torn(keep) => {
                // A short write: a prefix reaches the page cache, then the
                // machine dies. The caller still sees the op fail.
                let _ = self.inner.append(&data[..keep]);
                Err(FaultState::crash_error())
            }
        }
    }

    fn flush(&mut self) -> Result<()> {
        self.state.check_crashed()?;
        self.inner.flush()
    }

    fn sync(&mut self) -> Result<()> {
        match self.state.before_op(OpKind::Sync, &self.path, 0) {
            Decision::Proceed => self.inner.sync(),
            Decision::Fail(e) => Err(e),
            Decision::Torn(_) => unreachable!("torn decision only applies to appends"),
        }
    }

    fn ordering_barrier(&mut self) -> Result<()> {
        match self.state.before_op(OpKind::OrderingBarrier, &self.path, 0) {
            Decision::Proceed => self.inner.ordering_barrier(),
            Decision::Fail(e) => Err(e),
            Decision::Torn(_) => unreachable!("torn decision only applies to appends"),
        }
    }

    fn len(&self) -> u64 {
        self.inner.len()
    }
}

struct FaultRandomAccessFile {
    inner: Arc<dyn RandomAccessFile>,
    state: Arc<FaultState>,
}

impl RandomAccessFile for FaultRandomAccessFile {
    fn read(&self, offset: u64, len: usize) -> Result<Vec<u8>> {
        self.state.check_crashed()?;
        self.inner.read(offset, len)
    }

    fn len(&self) -> u64 {
        self.inner.len()
    }
}

impl Env for FaultEnv {
    fn new_writable_file(&self, path: &str) -> Result<Box<dyn WritableFile>> {
        match self.state.before_op(OpKind::Create, path, 0) {
            Decision::Proceed => {}
            Decision::Fail(e) => return Err(e),
            Decision::Torn(_) => unreachable!("torn decision only applies to appends"),
        }
        let inner = self.inner.new_writable_file(path)?;
        Ok(Box::new(FaultWritableFile {
            inner,
            state: Arc::clone(&self.state),
            path: path.to_string(),
        }))
    }

    fn new_appendable_file(&self, path: &str) -> Result<Box<dyn WritableFile>> {
        self.state.check_crashed()?;
        let inner = self.inner.new_appendable_file(path)?;
        Ok(Box::new(FaultWritableFile {
            inner,
            state: Arc::clone(&self.state),
            path: path.to_string(),
        }))
    }

    fn new_random_access_file(&self, path: &str) -> Result<Arc<dyn RandomAccessFile>> {
        self.state.check_crashed()?;
        let inner = self.inner.new_random_access_file(path)?;
        Ok(Arc::new(FaultRandomAccessFile {
            inner,
            state: Arc::clone(&self.state),
        }))
    }

    fn file_exists(&self, path: &str) -> bool {
        self.inner.file_exists(path)
    }

    fn file_size(&self, path: &str) -> Result<u64> {
        self.state.check_crashed()?;
        self.inner.file_size(path)
    }

    fn delete_file(&self, path: &str) -> Result<()> {
        match self.state.before_op(OpKind::Delete, path, 0) {
            Decision::Proceed => self.inner.delete_file(path),
            Decision::Fail(e) => Err(e),
            Decision::Torn(_) => unreachable!("torn decision only applies to appends"),
        }
    }

    fn rename_file(&self, from: &str, to: &str) -> Result<()> {
        match self.state.before_op(OpKind::Rename, from, 0) {
            Decision::Proceed => self.inner.rename_file(from, to),
            Decision::Fail(e) => Err(e),
            Decision::Torn(_) => unreachable!("torn decision only applies to appends"),
        }
    }

    fn link_file(&self, src: &str, dst: &str) -> Result<()> {
        // Keyed by the destination: checkpoint sweeps target "the Nth link
        // into checkpoint dir X", which the source name cannot express.
        match self.state.before_op(OpKind::Link, dst, 0) {
            Decision::Proceed => self.inner.link_file(src, dst),
            Decision::Fail(e) => Err(e),
            Decision::Torn(_) => unreachable!("torn decision only applies to appends"),
        }
    }

    fn link_count(&self, path: &str) -> Result<u64> {
        self.state.check_crashed()?;
        self.inner.link_count(path)
    }

    fn create_dir_all(&self, path: &str) -> Result<()> {
        self.state.check_crashed()?;
        self.inner.create_dir_all(path)
    }

    fn list_dir(&self, dir: &str) -> Result<Vec<String>> {
        self.state.check_crashed()?;
        self.inner.list_dir(dir)
    }

    fn punch_hole(&self, path: &str, offset: u64, len: u64) -> Result<()> {
        match self.state.before_op(OpKind::PunchHole, path, 0) {
            Decision::Proceed => self.inner.punch_hole(path, offset, len),
            Decision::Fail(e) => Err(e),
            Decision::Torn(_) => unreachable!("torn decision only applies to appends"),
        }
    }

    fn stats(&self) -> &IoStats {
        self.inner.stats()
    }

    fn supports_ordering_barrier(&self) -> bool {
        self.inner.supports_ordering_barrier()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mem_fault() -> FaultEnv {
        FaultEnv::over_mem()
    }

    #[test]
    fn no_plan_passes_through_and_counts() {
        let env = mem_fault();
        env.start_recording();
        let mut f = env.new_writable_file("a").unwrap(); // op 0: create
        f.append(b"hello").unwrap(); // op 1: append
        f.sync().unwrap(); // op 2: sync
        env.rename_file("a", "b").unwrap(); // op 3: rename
        env.punch_hole("b", 0, 2).unwrap(); // op 4: punch
        env.delete_file("b").unwrap(); // op 5: delete
        let trace = env.stop_recording();
        assert_eq!(env.op_count(), 6);
        assert_eq!(env.sync_count(), 1);
        assert_eq!(env.faults_injected(), 0);
        let kinds: Vec<OpKind> = trace.iter().map(|r| r.kind).collect();
        assert_eq!(
            kinds,
            vec![
                OpKind::Create,
                OpKind::Append,
                OpKind::Sync,
                OpKind::Rename,
                OpKind::PunchHole,
                OpKind::Delete,
            ]
        );
        assert_eq!(trace[1].bytes, 5);
        assert_eq!(trace[3].path, "a");
    }

    #[test]
    fn crash_at_op_freezes_everything() {
        let env = mem_fault();
        env.set_plan(FaultPlan::new().crash_at_op(2));
        let mut f = env.new_writable_file("a").unwrap(); // op 0
        f.append(b"one").unwrap(); // op 1
        assert!(f.append(b"two").is_err()); // op 2: crash fires
        assert!(env.crashed());
        // Everything after the crash fails, reads included.
        assert!(f.sync().is_err());
        assert!(env.new_writable_file("b").is_err());
        assert!(env.list_dir("").is_err());
        assert!(env.file_size("a").is_err());
        assert_eq!(env.faults_injected(), 1);

        // Crash the inner store, reset, and observe only synced state: "one"
        // was never synced, so Clean discards it.
        env.crash_inner(CrashConfig::Clean);
        env.reset();
        assert!(!env.crashed());
        assert_eq!(env.file_size("a").unwrap(), 0);
    }

    #[test]
    fn extend_plan_merges_without_resetting_rule_progress() {
        let env = mem_fault();
        // Harness plan: EIO on the second (nth=1) sync of an m-* file.
        env.set_plan(FaultPlan::new().eio_on_path(PathKind::Sync, "m-*", 1));
        let mut f = env.new_writable_file("m-a").unwrap();
        f.append(b"x").unwrap();
        f.sync().unwrap(); // m-* sync #0: passes, advances seen to 1

        // Workload arms an extra rule mid-run; ordinals count from here, so
        // nth=0 means "the next matching sync", and the harness rule's
        // progress (seen=1) must survive the merge.
        env.extend_plan(FaultPlan::new().eio_on_path(PathKind::Sync, "w-*", 0));
        let mut w = env.new_writable_file("w-a").unwrap();
        w.append(b"y").unwrap();
        assert!(w.sync().is_err(), "armed w-* rule fires on its next sync");
        assert!(f.sync().is_err(), "harness m-* rule still fires at nth=1");
        assert_eq!(env.faults_injected(), 2);
        assert!(f.sync().is_ok(), "both rules are one-shot");

        // A crash point in the extension replaces (not duplicates) any
        // armed crash point.
        env.extend_plan(FaultPlan::new().crash_at_op(env.op_count()));
        assert!(env.new_writable_file("z").is_err());
        assert!(env.crashed());
    }

    #[test]
    fn torn_crash_keeps_prefix_of_payload() {
        let env = mem_fault();
        let mut f = env.new_writable_file("a").unwrap(); // op 0
        f.append(b"durable").unwrap(); // op 1
        f.sync().unwrap(); // op 2
        env.set_plan(FaultPlan::new().torn_crash_at_op(3, 2));
        assert!(f.append(b"xyz").is_err()); // op 3: torn, keeps "xy"
        assert!(env.crashed());
        env.crash_inner(CrashConfig::Clean);
        env.reset();
        // Clean crash keeps only the synced prefix; the torn bytes were
        // unsynced page-cache content and are discarded.
        assert_eq!(env.file_size("a").unwrap(), 7);

        // With a TornTail crash config the torn bytes may survive; check
        // the file never exceeds synced + torn-kept bytes.
        let env = mem_fault();
        let mut f = env.new_writable_file("a").unwrap();
        f.append(b"durable").unwrap();
        f.sync().unwrap();
        env.set_plan(FaultPlan::new().torn_crash_at_op(3, 2));
        assert!(f.append(b"xyz").is_err());
        env.crash_inner(CrashConfig::TornTail { seed: 7 });
        env.reset();
        let size = env.file_size("a").unwrap();
        assert!((7..=9).contains(&size), "size {size}");
    }

    #[test]
    fn fail_sync_injects_eio_once() {
        let env = mem_fault();
        env.set_plan(FaultPlan::new().fail_sync(1));
        let mut f = env.new_writable_file("a").unwrap();
        f.append(b"x").unwrap();
        f.sync().unwrap(); // sync 0: fine
        f.append(b"y").unwrap();
        assert!(f.sync().is_err()); // sync 1: EIO
        assert!(!env.crashed(), "EIO is not a crash");
        f.sync().unwrap(); // sync 2: fine again
        assert_eq!(env.faults_injected(), 1);
        assert_eq!(env.sync_count(), 3);
    }

    #[test]
    fn fail_op_injects_eio_once() {
        let env = mem_fault();
        env.set_plan(FaultPlan::new().fail_op(1));
        let mut f = env.new_writable_file("a").unwrap(); // op 0
        assert!(f.append(b"x").is_err()); // op 1: EIO
        f.append(b"x").unwrap(); // op 2: fine
        assert!(!env.crashed());
        assert_eq!(env.faults_injected(), 1);
    }

    #[test]
    fn markers_record_op_positions() {
        let env = mem_fault();
        env.start_recording();
        let mut f = env.new_writable_file("a").unwrap();
        f.append(b"x").unwrap();
        env.mark("loaded");
        f.sync().unwrap();
        env.mark("synced");
        let markers = env.markers();
        assert_eq!(
            markers,
            vec![(2, "loaded".to_string()), (3, "synced".to_string())]
        );
    }

    #[test]
    fn conformance_with_no_plan() {
        crate::tests::env_conformance(&mem_fault());
    }

    #[test]
    fn glob_matches_basename_or_full_path() {
        assert!(glob_match("MANIFEST-*", "db/MANIFEST-000003"));
        assert!(glob_match("*.log", "db/000007.log"));
        assert!(!glob_match("*.log", "db/000007.sst"));
        assert!(glob_match("db/*.sst", "db/000001.sst"));
        assert!(!glob_match("other/*.sst", "db/000001.sst"));
        assert!(glob_match("??????.sst", "db/000001.sst"));
        assert!(!glob_match("?????.sst", "db/000001.sst"));
    }

    #[test]
    fn path_rule_eio_on_nth_matching_sync() {
        let env = mem_fault();
        env.set_plan(FaultPlan::parse("eio:sync:glob=m-*:nth=1").unwrap());
        let mut m = env.new_writable_file("db/m-1").unwrap();
        let mut other = env.new_writable_file("db/data").unwrap();
        other.sync().unwrap(); // non-matching path: not counted by the rule
        m.sync().unwrap(); // matching #0
        other.sync().unwrap();
        assert!(m.sync().is_err()); // matching #1: EIO
        assert!(!env.crashed(), "path EIO is not a crash");
        m.sync().unwrap(); // fires once
        assert_eq!(env.faults_injected(), 1);
    }

    #[test]
    fn path_rule_crash_and_torn_variants() {
        let env = mem_fault();
        env.set_plan(FaultPlan::new().crash_on_path(PathKind::Append, "*.log", 2));
        let mut f = env.new_writable_file("a.log").unwrap();
        f.append(b"one").unwrap();
        f.append(b"two").unwrap();
        assert!(f.append(b"three").is_err()); // matching append #2
        assert!(env.crashed());

        let env = mem_fault();
        env.set_plan(FaultPlan::parse("torn=2:append:glob=*.log:nth=0").unwrap());
        let mut f = env.new_writable_file("a.log").unwrap();
        assert!(f.append(b"xyz").is_err());
        assert!(env.crashed());
        env.crash_inner(CrashConfig::TornTail { seed: 1 });
        env.reset();
        let size = env.file_size("a.log").unwrap();
        assert!(size <= 2, "at most the torn prefix survives, got {size}");
    }

    #[test]
    fn parse_rejects_malformed_clauses() {
        assert!(FaultPlan::parse("sync:glob=M*:nth=0").is_ok());
        assert!(FaultPlan::parse("crash:delete:glob=*.sst:nth=3").is_ok());
        assert!(FaultPlan::parse("bogus:glob=M*:nth=0").is_err());
        assert!(FaultPlan::parse("sync:g=M*:nth=0").is_err());
        assert!(FaultPlan::parse("sync:glob=M*:nth=x").is_err());
        assert!(FaultPlan::parse("eio:sync:glob=M*").is_err());
    }
}

//! Always-on I/O instrumentation.
//!
//! The paper's headline metrics are *counts of `fsync()`/`fdatasync()` calls*
//! (Figs 4a, 11) and *total bytes written* (Fig 12's write-amplification
//! inserts, Fig 15c). Every [`Env`](crate::Env) implementation feeds these
//! counters so any experiment can report them without touching engine code.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use bolt_common::events::{BarrierKind, EngineEvent, EventSink};
use parking_lot::RwLock;

/// Cumulative I/O counters for one environment instance.
#[derive(Debug, Default)]
pub struct IoStats {
    fsync_calls: AtomicU64,
    ordering_barriers: AtomicU64,
    bytes_written: AtomicU64,
    bytes_read: AtomicU64,
    write_ops: AtomicU64,
    read_ops: AtomicU64,
    files_created: AtomicU64,
    files_deleted: AtomicU64,
    holes_punched: AtomicU64,
    hole_bytes: AtomicU64,
    /// Nanoseconds spent blocked inside `sync()` (device drain + barrier).
    sync_wait_nanos: AtomicU64,
    /// Structured-event destination. Every barrier and hole punch the env
    /// accounts for is also emitted here (tagged with the calling thread's
    /// [`bolt_common::events::BarrierCause`] scope), which makes this the
    /// single choke point guaranteeing *every* barrier appears in the trace.
    sink: RwLock<Option<Arc<EventSink>>>,
}

/// A point-in-time copy of [`IoStats`], suitable for diffing.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct IoSnapshot {
    /// Number of full durability barriers (`fsync`/`fdatasync`).
    pub fsync_calls: u64,
    /// Number of ordering-only barriers (the BarrierFS `fbarrier()` extension).
    pub ordering_barriers: u64,
    /// Total bytes appended to files.
    pub bytes_written: u64,
    /// Total bytes read from files.
    pub bytes_read: u64,
    /// Number of append operations.
    pub write_ops: u64,
    /// Number of read operations.
    pub read_ops: u64,
    /// Files created.
    pub files_created: u64,
    /// Files deleted.
    pub files_deleted: u64,
    /// `punch_hole` calls.
    pub holes_punched: u64,
    /// Bytes reclaimed by hole punching.
    pub hole_bytes: u64,
    /// Nanoseconds spent blocked in `sync()`.
    pub sync_wait_nanos: u64,
}

impl IoSnapshot {
    /// Counter-wise difference `self - earlier` (saturating).
    pub fn delta(&self, earlier: &IoSnapshot) -> IoSnapshot {
        IoSnapshot {
            fsync_calls: self.fsync_calls.saturating_sub(earlier.fsync_calls),
            ordering_barriers: self
                .ordering_barriers
                .saturating_sub(earlier.ordering_barriers),
            bytes_written: self.bytes_written.saturating_sub(earlier.bytes_written),
            bytes_read: self.bytes_read.saturating_sub(earlier.bytes_read),
            write_ops: self.write_ops.saturating_sub(earlier.write_ops),
            read_ops: self.read_ops.saturating_sub(earlier.read_ops),
            files_created: self.files_created.saturating_sub(earlier.files_created),
            files_deleted: self.files_deleted.saturating_sub(earlier.files_deleted),
            holes_punched: self.holes_punched.saturating_sub(earlier.holes_punched),
            hole_bytes: self.hole_bytes.saturating_sub(earlier.hole_bytes),
            sync_wait_nanos: self.sync_wait_nanos.saturating_sub(earlier.sync_wait_nanos),
        }
    }
}

impl IoStats {
    /// Install the structured-event sink. Subsequent barriers and hole
    /// punches are emitted to it in addition to being counted.
    pub fn set_event_sink(&self, sink: Arc<EventSink>) {
        *self.sink.write() = Some(sink);
    }

    /// The installed event sink, if any.
    pub fn event_sink(&self) -> Option<Arc<EventSink>> {
        self.sink.read().clone()
    }

    /// Record a durability barrier that blocked for `wait_nanos`.
    pub fn record_fsync(&self, wait_nanos: u64) {
        self.fsync_calls.fetch_add(1, Ordering::Relaxed);
        self.sync_wait_nanos
            .fetch_add(wait_nanos, Ordering::Relaxed);
        if let Some(sink) = self.sink.read().clone() {
            sink.emit_barrier(BarrierKind::Fsync);
        }
    }

    /// Record an ordering-only barrier.
    pub fn record_ordering_barrier(&self) {
        self.ordering_barriers.fetch_add(1, Ordering::Relaxed);
        if let Some(sink) = self.sink.read().clone() {
            sink.emit_barrier(BarrierKind::Ordering);
        }
    }

    /// Add barrier wait time without counting an extra fsync (used by cost
    /// models layered over an accounting env).
    pub fn record_sync_wait(&self, nanos: u64) {
        self.sync_wait_nanos.fetch_add(nanos, Ordering::Relaxed);
    }

    /// Record an append of `n` bytes.
    pub fn record_write(&self, n: u64) {
        self.write_ops.fetch_add(1, Ordering::Relaxed);
        self.bytes_written.fetch_add(n, Ordering::Relaxed);
    }

    /// Record a read of `n` bytes.
    pub fn record_read(&self, n: u64) {
        self.read_ops.fetch_add(1, Ordering::Relaxed);
        self.bytes_read.fetch_add(n, Ordering::Relaxed);
    }

    /// Record a file creation.
    pub fn record_create(&self) {
        self.files_created.fetch_add(1, Ordering::Relaxed);
    }

    /// Record a file deletion.
    pub fn record_delete(&self) {
        self.files_deleted.fetch_add(1, Ordering::Relaxed);
    }

    /// Record a hole punch reclaiming `n` bytes.
    pub fn record_punch_hole(&self, n: u64) {
        self.holes_punched.fetch_add(1, Ordering::Relaxed);
        self.hole_bytes.fetch_add(n, Ordering::Relaxed);
        if let Some(sink) = self.sink.read().clone() {
            sink.emit(EngineEvent::HolePunch { bytes: n });
        }
    }

    /// Number of durability barriers so far.
    pub fn fsync_calls(&self) -> u64 {
        self.fsync_calls.load(Ordering::Relaxed)
    }

    /// Total bytes written so far.
    pub fn bytes_written(&self) -> u64 {
        self.bytes_written.load(Ordering::Relaxed)
    }

    /// Total bytes read so far.
    pub fn bytes_read(&self) -> u64 {
        self.bytes_read.load(Ordering::Relaxed)
    }

    /// Take a snapshot of all counters.
    pub fn snapshot(&self) -> IoSnapshot {
        IoSnapshot {
            fsync_calls: self.fsync_calls.load(Ordering::Relaxed),
            ordering_barriers: self.ordering_barriers.load(Ordering::Relaxed),
            bytes_written: self.bytes_written.load(Ordering::Relaxed),
            bytes_read: self.bytes_read.load(Ordering::Relaxed),
            write_ops: self.write_ops.load(Ordering::Relaxed),
            read_ops: self.read_ops.load(Ordering::Relaxed),
            files_created: self.files_created.load(Ordering::Relaxed),
            files_deleted: self.files_deleted.load(Ordering::Relaxed),
            holes_punched: self.holes_punched.load(Ordering::Relaxed),
            hole_bytes: self.hole_bytes.load(Ordering::Relaxed),
            sync_wait_nanos: self.sync_wait_nanos.load(Ordering::Relaxed),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate() {
        let stats = IoStats::default();
        stats.record_fsync(100);
        stats.record_fsync(50);
        stats.record_write(10);
        stats.record_read(20);
        stats.record_create();
        stats.record_delete();
        stats.record_punch_hole(4096);
        stats.record_ordering_barrier();
        let snap = stats.snapshot();
        assert_eq!(snap.fsync_calls, 2);
        assert_eq!(snap.sync_wait_nanos, 150);
        assert_eq!(snap.bytes_written, 10);
        assert_eq!(snap.bytes_read, 20);
        assert_eq!(snap.write_ops, 1);
        assert_eq!(snap.read_ops, 1);
        assert_eq!(snap.files_created, 1);
        assert_eq!(snap.files_deleted, 1);
        assert_eq!(snap.holes_punched, 1);
        assert_eq!(snap.hole_bytes, 4096);
        assert_eq!(snap.ordering_barriers, 1);
    }

    #[test]
    fn barriers_flow_to_the_event_sink_with_causes() {
        use bolt_common::events::{BarrierCause, BarrierScope};
        let stats = IoStats::default();
        let sink = Arc::new(EventSink::new());
        stats.set_event_sink(Arc::clone(&sink));
        {
            let _scope = BarrierScope::new(BarrierCause::FlushData);
            stats.record_fsync(10);
        }
        stats.record_ordering_barrier();
        stats.record_punch_hole(4096);
        assert_eq!(sink.barrier_count(BarrierCause::FlushData), 1);
        assert_eq!(sink.barrier_count(BarrierCause::Unattributed), 1);
        assert_eq!(sink.drain().len(), 3, "fsync + ordering + hole punch");
    }

    #[test]
    fn snapshot_delta() {
        let stats = IoStats::default();
        stats.record_write(5);
        let a = stats.snapshot();
        stats.record_write(7);
        stats.record_fsync(0);
        let b = stats.snapshot();
        let d = b.delta(&a);
        assert_eq!(d.bytes_written, 7);
        assert_eq!(d.write_ops, 1);
        assert_eq!(d.fsync_calls, 1);
    }
}

//! In-memory filesystem with crash injection.
//!
//! `MemEnv` is the reference substrate for correctness testing: it tracks,
//! per file, which prefix has been made durable by `sync()`, and
//! [`MemEnv::crash`] discards everything else — optionally keeping a *torn
//! tail* (a random prefix of the unsynced bytes), which is exactly the
//! failure mode WAL and MANIFEST recovery must tolerate.

use std::collections::HashMap;
use std::sync::Arc;

use parking_lot::RwLock;

use bolt_common::rng::Rng64;
use bolt_common::{Error, Result};

use crate::stats::IoStats;
use crate::{Env, RandomAccessFile, WritableFile};

/// What survives of each file's unsynced suffix when a crash is injected.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CrashConfig {
    /// Only bytes covered by a completed `sync()` survive.
    Clean,
    /// Additionally keep a pseudo-random prefix of the unsynced suffix of
    /// each file (block-device torn writes). Deterministic per `seed`.
    TornTail {
        /// Seed for the per-file torn length.
        seed: u64,
    },
}

#[derive(Debug, Default)]
struct FileData {
    bytes: Vec<u8>,
    synced_len: usize,
}

#[derive(Debug, Default)]
struct MemFile {
    data: RwLock<FileData>,
}

/// An in-memory [`Env`] with per-file durability tracking and crash
/// injection.
pub struct MemEnv {
    files: RwLock<HashMap<String, Arc<MemFile>>>,
    stats: Arc<IoStats>,
}

impl Default for MemEnv {
    fn default() -> Self {
        Self::new()
    }
}

impl std::fmt::Debug for MemEnv {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MemEnv")
            .field("files", &self.files.read().len())
            .finish()
    }
}

impl MemEnv {
    /// Create an empty in-memory filesystem.
    pub fn new() -> Self {
        MemEnv {
            files: RwLock::new(HashMap::new()),
            stats: Arc::new(IoStats::default()),
        }
    }

    /// Simulate a power failure: every file keeps its synced prefix; with
    /// [`CrashConfig::TornTail`], a deterministic pseudo-random prefix of
    /// the unsynced suffix survives as well.
    ///
    /// Open handles created before the crash keep operating on the
    /// post-crash state (tests should drop them instead, like a real
    /// process death).
    pub fn crash(&self, config: CrashConfig) {
        let files = self.files.read();
        let mut rng = match config {
            CrashConfig::Clean => None,
            CrashConfig::TornTail { seed } => Some(Rng64::new(seed)),
        };
        // Deterministic iteration order for TornTail reproducibility.
        let mut names: Vec<&String> = files.keys().collect();
        names.sort();
        for name in names {
            let file = &files[name];
            let mut data = file.data.write();
            let keep = match &mut rng {
                None => data.synced_len,
                Some(rng) => {
                    let unsynced = data.bytes.len() - data.synced_len;
                    data.synced_len + rng.next_below(unsynced as u64 + 1) as usize
                }
            };
            data.bytes.truncate(keep);
            data.synced_len = keep;
        }
    }

    /// Bytes a crash would preserve for `path` (synced prefix length).
    ///
    /// # Errors
    ///
    /// Returns [`Error::NotFound`] if the file does not exist.
    pub fn synced_len(&self, path: &str) -> Result<u64> {
        let file = self.get(path)?;
        let synced = file.data.read().synced_len as u64;
        Ok(synced)
    }

    /// Shared handle to the env's counters for layered environments.
    pub(crate) fn shared_stats(&self) -> Arc<IoStats> {
        Arc::clone(&self.stats)
    }

    fn get(&self, path: &str) -> Result<Arc<MemFile>> {
        self.files.read().get(path).cloned().ok_or(Error::NotFound)
    }
}

struct MemWritableFile {
    file: Arc<MemFile>,
    stats: Arc<IoStats>,
}

impl WritableFile for MemWritableFile {
    fn append(&mut self, data: &[u8]) -> Result<()> {
        self.file.data.write().bytes.extend_from_slice(data);
        self.stats.record_write(data.len() as u64);
        Ok(())
    }

    fn flush(&mut self) -> Result<()> {
        Ok(())
    }

    fn sync(&mut self) -> Result<()> {
        let mut data = self.file.data.write();
        data.synced_len = data.bytes.len();
        drop(data);
        self.stats.record_fsync(0);
        Ok(())
    }

    fn ordering_barrier(&mut self) -> Result<()> {
        // An ordering barrier guarantees crash-ordering of prior appends;
        // MemEnv models that as durable-up-to-here, counted separately.
        let mut data = self.file.data.write();
        data.synced_len = data.bytes.len();
        drop(data);
        self.stats.record_ordering_barrier();
        Ok(())
    }

    fn len(&self) -> u64 {
        self.file.data.read().bytes.len() as u64
    }
}

struct MemRandomAccessFile {
    file: Arc<MemFile>,
    stats: Arc<IoStats>,
}

impl RandomAccessFile for MemRandomAccessFile {
    fn read(&self, offset: u64, len: usize) -> Result<Vec<u8>> {
        let data = self.file.data.read();
        let total = data.bytes.len() as u64;
        if offset > total {
            return Err(Error::io(format!(
                "read offset {offset} beyond end of file ({total})"
            )));
        }
        let start = offset as usize;
        let end = (start + len).min(data.bytes.len());
        let out = data.bytes[start..end].to_vec();
        self.stats.record_read(out.len() as u64);
        Ok(out)
    }

    fn len(&self) -> u64 {
        self.file.data.read().bytes.len() as u64
    }
}

impl Env for MemEnv {
    fn new_writable_file(&self, path: &str) -> Result<Box<dyn WritableFile>> {
        let file = Arc::new(MemFile::default());
        self.files
            .write()
            .insert(path.to_string(), Arc::clone(&file));
        self.stats.record_create();
        Ok(Box::new(MemWritableFile {
            file,
            stats: Arc::clone(&self.stats),
        }))
    }

    fn new_appendable_file(&self, path: &str) -> Result<Box<dyn WritableFile>> {
        let file = self.get(path)?;
        Ok(Box::new(MemWritableFile {
            file,
            stats: Arc::clone(&self.stats),
        }))
    }

    fn new_random_access_file(&self, path: &str) -> Result<Arc<dyn RandomAccessFile>> {
        let file = self.get(path)?;
        Ok(Arc::new(MemRandomAccessFile {
            file,
            stats: Arc::clone(&self.stats),
        }))
    }

    fn file_exists(&self, path: &str) -> bool {
        self.files.read().contains_key(path)
    }

    fn file_size(&self, path: &str) -> Result<u64> {
        Ok(self.get(path)?.data.read().bytes.len() as u64)
    }

    fn delete_file(&self, path: &str) -> Result<()> {
        self.files
            .write()
            .remove(path)
            .map(|_| self.stats.record_delete())
            .ok_or(Error::NotFound)
    }

    fn rename_file(&self, from: &str, to: &str) -> Result<()> {
        let mut files = self.files.write();
        let file = files.remove(from).ok_or(Error::NotFound)?;
        files.insert(to.to_string(), file);
        Ok(())
    }

    fn link_file(&self, src: &str, dst: &str) -> Result<()> {
        // True hard-link semantics: both names share the same inode, so
        // the destination inherits the source's synced prefix and the
        // link itself survives a crash iff the source's bytes did.
        let mut files = self.files.write();
        let file = files.get(src).cloned().ok_or(Error::NotFound)?;
        files.insert(dst.to_string(), file);
        Ok(())
    }

    fn link_count(&self, path: &str) -> Result<u64> {
        // The inode is the shared `Arc<MemFile>`; every map entry holding
        // the same allocation is a name for it.
        let files = self.files.read();
        let target = files.get(path).ok_or(Error::NotFound)?;
        Ok(files.values().filter(|f| Arc::ptr_eq(f, target)).count() as u64)
    }

    fn create_dir_all(&self, _path: &str) -> Result<()> {
        Ok(())
    }

    fn list_dir(&self, dir: &str) -> Result<Vec<String>> {
        let prefix = if dir.is_empty() || dir.ends_with('/') {
            dir.to_string()
        } else {
            format!("{dir}/")
        };
        let mut names: Vec<String> = self
            .files
            .read()
            .keys()
            .filter_map(|path| {
                let rest = path.strip_prefix(&prefix)?;
                if rest.is_empty() || rest.contains('/') {
                    None
                } else {
                    Some(rest.to_string())
                }
            })
            .collect();
        // Sorted so directory scans (and everything built on them, like
        // recovery and the crash-sweep harness) are deterministic.
        names.sort();
        Ok(names)
    }

    fn punch_hole(&self, path: &str, offset: u64, len: u64) -> Result<()> {
        let file = self.get(path)?;
        let mut data = file.data.write();
        let total = data.bytes.len() as u64;
        let start = offset.min(total) as usize;
        let end = offset.saturating_add(len).min(total) as usize;
        data.bytes[start..end].fill(0);
        drop(data);
        self.stats.record_punch_hole((end - start) as u64);
        Ok(())
    }

    fn stats(&self) -> &IoStats {
        &self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn write_file(env: &MemEnv, path: &str, data: &[u8], sync: bool) {
        let mut f = env.new_writable_file(path).unwrap();
        f.append(data).unwrap();
        if sync {
            f.sync().unwrap();
        }
    }

    #[test]
    fn crash_discards_unsynced_bytes() {
        let env = MemEnv::new();
        write_file(&env, "synced", b"durable", true);
        write_file(&env, "unsynced", b"volatile", false);

        let mut f = env.new_appendable_file("synced").unwrap();
        f.append(b"-tail").unwrap();
        drop(f);

        env.crash(CrashConfig::Clean);

        assert_eq!(env.file_size("synced").unwrap(), 7);
        assert_eq!(env.file_size("unsynced").unwrap(), 0);
        let r = env.new_random_access_file("synced").unwrap();
        assert_eq!(r.read(0, 7).unwrap(), b"durable");
    }

    #[test]
    fn torn_tail_keeps_a_prefix_of_unsynced_bytes() {
        for seed in 0..20 {
            let env = MemEnv::new();
            let mut f = env.new_writable_file("log").unwrap();
            f.append(b"0123456789").unwrap();
            f.sync().unwrap();
            f.append(b"abcdefghij").unwrap();
            drop(f);

            env.crash(CrashConfig::TornTail { seed });
            let size = env.file_size("log").unwrap();
            assert!((10..=20).contains(&size), "seed {seed}: size {size}");
            let r = env.new_random_access_file("log").unwrap();
            let data = r.read(0, size as usize).unwrap();
            let expected: &[u8] = b"0123456789abcdefghij";
            assert_eq!(&data[..], &expected[..size as usize]);
        }
    }

    #[test]
    fn torn_tail_is_deterministic() {
        let sizes = |seed| {
            let env = MemEnv::new();
            let mut f = env.new_writable_file("log").unwrap();
            f.append(&[7u8; 1000]).unwrap();
            drop(f);
            env.crash(CrashConfig::TornTail { seed });
            env.file_size("log").unwrap()
        };
        assert_eq!(sizes(3), sizes(3));
    }

    #[test]
    fn synced_len_tracks_sync_calls() {
        let env = MemEnv::new();
        let mut f = env.new_writable_file("f").unwrap();
        f.append(b"aaa").unwrap();
        assert_eq!(env.synced_len("f").unwrap(), 0);
        f.sync().unwrap();
        assert_eq!(env.synced_len("f").unwrap(), 3);
        f.append(b"bb").unwrap();
        assert_eq!(env.synced_len("f").unwrap(), 3);
    }

    #[test]
    fn rename_replaces_target() {
        let env = MemEnv::new();
        write_file(&env, "a", b"aaa", true);
        write_file(&env, "b", b"bbbb", true);
        env.rename_file("a", "b").unwrap();
        assert_eq!(env.file_size("b").unwrap(), 3);
        assert!(!env.file_exists("a"));
    }

    #[test]
    fn list_dir_only_direct_children() {
        let env = MemEnv::new();
        write_file(&env, "db/a", b"x", true);
        write_file(&env, "db/b", b"x", true);
        write_file(&env, "db/sub/c", b"x", true);
        write_file(&env, "other/d", b"x", true);
        let mut names = env.list_dir("db").unwrap();
        names.sort();
        assert_eq!(names, vec!["a".to_string(), "b".to_string()]);
    }

    #[test]
    fn punch_hole_beyond_eof_is_clamped() {
        let env = MemEnv::new();
        write_file(&env, "f", &[1u8; 100], true);
        env.punch_hole("f", 50, 1000).unwrap();
        let r = env.new_random_access_file("f").unwrap();
        let data = r.read(0, 100).unwrap();
        assert!(data[..50].iter().all(|&b| b == 1));
        assert!(data[50..].iter().all(|&b| b == 0));
        assert!(env.punch_hole("missing", 0, 1).is_err());
    }

    #[test]
    fn writable_file_truncates_existing() {
        let env = MemEnv::new();
        write_file(&env, "f", b"long content", true);
        write_file(&env, "f", b"x", true);
        assert_eq!(env.file_size("f").unwrap(), 1);
    }
}

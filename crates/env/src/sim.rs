//! SSD cost-model environment.
//!
//! [`SimEnv`] layers a device timing model over [`MemEnv`] so that the
//! *relative* costs the paper studies hold on any machine:
//!
//! * **Buffered appends are cheap** — they queue work on the device and
//!   return immediately (page-cache semantics).
//! * **`sync()` is a barrier** — it blocks until the device's write queue is
//!   drained at the configured sequential bandwidth, plus a fixed barrier
//!   latency (the paper: barriers "block the system until the queue depth
//!   becomes 0").
//! * **Reads are synchronous** — base latency plus size over read bandwidth,
//!   so a 1 MB index-block miss costs ~20× a 4 KB data-block read (the §2.6
//!   metadata-caching effect).
//! * **Ordering barriers are cheap** — the BarrierFS `fbarrier()` extension
//!   costs no drain, enabling the related-work ablation.
//!
//! All durations are multiplied by `time_scale`, letting experiments trade
//! wall-clock time for fidelity without changing any ratio.

use std::sync::Arc;
use std::time::{Duration, Instant};

use parking_lot::Mutex;

use bolt_common::Result;

use crate::mem::MemEnv;
use crate::stats::IoStats;
use crate::{CrashConfig, Env, RandomAccessFile, WritableFile};

/// Sleep for `duration` with sub-millisecond precision (hybrid
/// sleep-then-spin; plain `thread::sleep` oversleeps short waits by far more
/// than the barrier latencies being modeled).
pub fn precise_sleep(duration: Duration) {
    if duration.is_zero() {
        return;
    }
    let deadline = Instant::now() + duration;
    const SPIN_WINDOW: Duration = Duration::from_micros(150);
    if duration > SPIN_WINDOW {
        std::thread::sleep(duration - SPIN_WINDOW);
    }
    while Instant::now() < deadline {
        std::hint::spin_loop();
    }
}

/// Parameters of the simulated SSD.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DeviceModel {
    /// Sequential write bandwidth in bytes/second.
    pub write_bandwidth: u64,
    /// Read bandwidth in bytes/second.
    pub read_bandwidth: u64,
    /// Fixed cost of any read operation (seek/queue/issue).
    pub read_base_latency: Duration,
    /// Fixed cost of a durability barrier on top of draining the queue.
    pub barrier_latency: Duration,
    /// Multiplier applied to every modeled delay (1.0 = full fidelity;
    /// smaller values speed up experiments while preserving every ratio).
    pub time_scale: f64,
}

impl DeviceModel {
    /// A consumer SATA SSD in the spirit of the paper's Samsung 860 EVO:
    /// ~500 MB/s sequential write, ~550 MB/s read, 80 µs read issue cost,
    /// 2 ms cache-flush barrier.
    pub fn ssd() -> Self {
        DeviceModel {
            write_bandwidth: 500 * 1024 * 1024,
            read_bandwidth: 550 * 1024 * 1024,
            read_base_latency: Duration::from_micros(80),
            barrier_latency: Duration::from_millis(2),
            time_scale: 1.0,
        }
    }

    /// The SSD model scaled by `time_scale` (delays multiplied, ratios
    /// preserved).
    pub fn ssd_scaled(time_scale: f64) -> Self {
        DeviceModel {
            time_scale,
            ..Self::ssd()
        }
    }

    /// A nearly-free device for functional tests that still counts I/O.
    pub fn fast_test() -> Self {
        DeviceModel {
            write_bandwidth: 64 * 1024 * 1024 * 1024,
            read_bandwidth: 64 * 1024 * 1024 * 1024,
            read_base_latency: Duration::ZERO,
            barrier_latency: Duration::ZERO,
            time_scale: 1.0,
        }
    }

    fn scaled(&self, d: Duration) -> Duration {
        if self.time_scale == 1.0 {
            d
        } else {
            d.mul_f64(self.time_scale)
        }
    }

    fn write_cost(&self, bytes: u64) -> Duration {
        Duration::from_nanos(bytes.saturating_mul(1_000_000_000) / self.write_bandwidth.max(1))
    }

    fn read_cost(&self, bytes: u64) -> Duration {
        self.read_base_latency
            + Duration::from_nanos(bytes.saturating_mul(1_000_000_000) / self.read_bandwidth.max(1))
    }
}

/// The device's write-queue timeline.
#[derive(Debug)]
struct Device {
    model: DeviceModel,
    /// When the last queued write finishes draining.
    busy_until: Mutex<Instant>,
}

impl Device {
    fn new(model: DeviceModel) -> Self {
        Device {
            model,
            busy_until: Mutex::new(Instant::now()),
        }
    }

    /// Queue `bytes` of write work; returns immediately.
    fn queue_write(&self, bytes: u64) {
        let cost = self.model.scaled(self.model.write_cost(bytes));
        let mut busy = self.busy_until.lock();
        let now = Instant::now();
        *busy = (*busy).max(now) + cost;
    }

    /// Block until the queue is drained plus the barrier latency; returns
    /// the time actually waited.
    fn barrier(&self) -> Duration {
        let target = {
            let mut busy = self.busy_until.lock();
            let now = Instant::now();
            let target = (*busy).max(now) + self.model.scaled(self.model.barrier_latency);
            *busy = target;
            target
        };
        let now = Instant::now();
        let wait = target.saturating_duration_since(now);
        precise_sleep(wait);
        wait
    }

    /// Block for the duration of a read of `bytes`.
    fn read(&self, bytes: u64) {
        precise_sleep(self.model.scaled(self.model.read_cost(bytes)));
    }
}

/// [`MemEnv`] + [`DeviceModel`]: the substitute for the paper's SSD testbed.
pub struct SimEnv {
    inner: MemEnv,
    device: Arc<Device>,
    barrierfs: bool,
}

impl std::fmt::Debug for SimEnv {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SimEnv")
            .field("model", &self.device.model)
            .field("barrierfs", &self.barrierfs)
            .finish()
    }
}

impl SimEnv {
    /// Create a simulated-SSD environment.
    pub fn new(model: DeviceModel) -> Self {
        SimEnv {
            inner: MemEnv::new(),
            device: Arc::new(Device::new(model)),
            barrierfs: false,
        }
    }

    /// Enable the BarrierFS extension: [`WritableFile::ordering_barrier`]
    /// becomes an ordering-only (nearly free) operation.
    pub fn with_barrierfs(model: DeviceModel) -> Self {
        SimEnv {
            inner: MemEnv::new(),
            device: Arc::new(Device::new(model)),
            barrierfs: true,
        }
    }

    /// The device model in use.
    pub fn model(&self) -> DeviceModel {
        self.device.model
    }

    /// Inject a crash (delegates to [`MemEnv::crash`]).
    pub fn crash(&self, config: CrashConfig) {
        self.inner.crash(config);
    }
}

struct SimWritableFile {
    inner: Box<dyn WritableFile>,
    device: Arc<Device>,
    stats: Arc<IoStats>,
    barrierfs: bool,
}

impl WritableFile for SimWritableFile {
    fn append(&mut self, data: &[u8]) -> Result<()> {
        self.inner.append(data)?;
        self.device.queue_write(data.len() as u64);
        Ok(())
    }

    fn flush(&mut self) -> Result<()> {
        self.inner.flush()
    }

    fn sync(&mut self) -> Result<()> {
        self.inner.sync()?; // counts the fsync, marks bytes durable
        let waited = self.device.barrier();
        self.stats.record_sync_wait(waited.as_nanos() as u64);
        Ok(())
    }

    fn ordering_barrier(&mut self) -> Result<()> {
        if self.barrierfs {
            // Ordering is enforced without draining the queue (BarrierFS):
            // the inner env marks the data crash-ordered and counts an
            // ordering barrier instead of an fsync.
            self.inner.ordering_barrier()
        } else {
            self.sync()
        }
    }

    fn len(&self) -> u64 {
        self.inner.len()
    }
}

struct SimRandomAccessFile {
    inner: Arc<dyn RandomAccessFile>,
    device: Arc<Device>,
}

impl RandomAccessFile for SimRandomAccessFile {
    fn read(&self, offset: u64, len: usize) -> Result<Vec<u8>> {
        let data = self.inner.read(offset, len)?;
        self.device.read(data.len() as u64);
        Ok(data)
    }

    fn len(&self) -> u64 {
        self.inner.len()
    }
}

impl Env for SimEnv {
    fn new_writable_file(&self, path: &str) -> Result<Box<dyn WritableFile>> {
        let inner = self.inner.new_writable_file(path)?;
        Ok(Box::new(SimWritableFile {
            inner,
            device: Arc::clone(&self.device),
            stats: self.inner.shared_stats(),
            barrierfs: self.barrierfs,
        }))
    }

    fn new_appendable_file(&self, path: &str) -> Result<Box<dyn WritableFile>> {
        let inner = self.inner.new_appendable_file(path)?;
        Ok(Box::new(SimWritableFile {
            inner,
            device: Arc::clone(&self.device),
            stats: self.inner.shared_stats(),
            barrierfs: self.barrierfs,
        }))
    }

    fn new_random_access_file(&self, path: &str) -> Result<Arc<dyn RandomAccessFile>> {
        let inner = self.inner.new_random_access_file(path)?;
        // Opening a file fetches filesystem metadata (inode + extents);
        // charge one small read. BoLT's file-descriptor cache exists to
        // avoid exactly this cost (§3.2.1).
        self.device.read(4096);
        Ok(Arc::new(SimRandomAccessFile {
            inner,
            device: Arc::clone(&self.device),
        }))
    }

    fn file_exists(&self, path: &str) -> bool {
        self.inner.file_exists(path)
    }

    fn file_size(&self, path: &str) -> Result<u64> {
        self.inner.file_size(path)
    }

    fn delete_file(&self, path: &str) -> Result<()> {
        self.inner.delete_file(path)
    }

    fn rename_file(&self, from: &str, to: &str) -> Result<()> {
        self.inner.rename_file(from, to)
    }

    fn link_file(&self, src: &str, dst: &str) -> Result<()> {
        // A hard link is pure metadata work (no data movement) — delegate so
        // the link shares the inner file instead of paying the copy default.
        self.inner.link_file(src, dst)
    }

    fn link_count(&self, path: &str) -> Result<u64> {
        self.inner.link_count(path)
    }

    fn create_dir_all(&self, path: &str) -> Result<()> {
        self.inner.create_dir_all(path)
    }

    fn list_dir(&self, dir: &str) -> Result<Vec<String>> {
        self.inner.list_dir(dir)
    }

    fn punch_hole(&self, path: &str, offset: u64, len: u64) -> Result<()> {
        // Hole punching is lazy metadata work (no barrier) — no device cost.
        self.inner.punch_hole(path, offset, len)
    }

    fn stats(&self) -> &IoStats {
        self.inner.stats()
    }

    fn supports_ordering_barrier(&self) -> bool {
        self.barrierfs
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ms(n: u64) -> Duration {
        Duration::from_millis(n)
    }

    fn test_model() -> DeviceModel {
        DeviceModel {
            write_bandwidth: 100 * 1024 * 1024, // 100 MB/s
            read_bandwidth: 100 * 1024 * 1024,
            read_base_latency: Duration::from_micros(200),
            barrier_latency: ms(2),
            time_scale: 1.0,
        }
    }

    #[test]
    fn appends_are_fast_syncs_pay_for_drain() {
        let env = SimEnv::new(test_model());
        let mut f = env.new_writable_file("f").unwrap();

        let start = Instant::now();
        f.append(&vec![0u8; 4 * 1024 * 1024]).unwrap(); // 4 MB = 40 ms of drain
        let append_time = start.elapsed();
        assert!(append_time < ms(20), "append blocked: {append_time:?}");

        let start = Instant::now();
        f.sync().unwrap();
        let sync_time = start.elapsed();
        // 40 ms drain + 2 ms barrier, minus whatever already drained.
        assert!(sync_time >= ms(30), "sync too fast: {sync_time:?}");
        assert!(sync_time < ms(200), "sync too slow: {sync_time:?}");
    }

    #[test]
    fn barrier_cost_scales_with_count_not_just_bytes() {
        // Writing N bytes with many barriers must cost more than with one.
        let total = 2 * 1024 * 1024;
        let chunk = total / 16;

        let run = |syncs_per_chunk: bool| {
            let env = SimEnv::new(test_model());
            let mut f = env.new_writable_file("f").unwrap();
            let start = Instant::now();
            for _ in 0..16 {
                f.append(&vec![0u8; chunk]).unwrap();
                if syncs_per_chunk {
                    f.sync().unwrap();
                }
            }
            if !syncs_per_chunk {
                f.sync().unwrap();
            }
            (start.elapsed(), env.stats().fsync_calls())
        };

        let (many_time, many_syncs) = run(true);
        let (one_time, one_syncs) = run(false);
        assert_eq!(many_syncs, 16);
        assert_eq!(one_syncs, 1);
        // 15 extra barriers at 2 ms each ≈ 30 ms difference.
        assert!(
            many_time > one_time + ms(20),
            "barriers not charged: many={many_time:?} one={one_time:?}"
        );
    }

    #[test]
    fn reads_cost_proportionally_to_size() {
        let env = SimEnv::new(test_model());
        let mut f = env.new_writable_file("f").unwrap();
        f.append(&vec![0u8; 2 * 1024 * 1024]).unwrap();
        f.sync().unwrap();
        drop(f);

        let r = env.new_random_access_file("f").unwrap();
        let start = Instant::now();
        for _ in 0..10 {
            r.read(0, 4096).unwrap();
        }
        let small = start.elapsed();

        let start = Instant::now();
        for _ in 0..10 {
            r.read(0, 1024 * 1024).unwrap(); // 1 MB ≈ 10 ms each
        }
        let large = start.elapsed();
        assert!(
            large > small * 4,
            "large reads not slower: small={small:?} large={large:?}"
        );
    }

    #[test]
    fn barrierfs_ordering_barrier_is_cheap() {
        let model = test_model();
        let env = SimEnv::with_barrierfs(model);
        assert!(env.supports_ordering_barrier());
        let mut f = env.new_writable_file("f").unwrap();
        f.append(&vec![0u8; 4 * 1024 * 1024]).unwrap();
        let start = Instant::now();
        f.ordering_barrier().unwrap();
        assert!(start.elapsed() < ms(10));
        assert_eq!(env.stats().snapshot().ordering_barriers, 1);

        // Without BarrierFS the same call is a full sync.
        let env = SimEnv::new(model);
        assert!(!env.supports_ordering_barrier());
        let mut f = env.new_writable_file("f").unwrap();
        f.append(&vec![0u8; 4 * 1024 * 1024]).unwrap();
        let start = Instant::now();
        f.ordering_barrier().unwrap();
        assert!(start.elapsed() >= ms(30));
    }

    #[test]
    fn time_scale_shrinks_delays() {
        let mut model = test_model();
        model.time_scale = 0.05;
        let env = SimEnv::new(model);
        let mut f = env.new_writable_file("f").unwrap();
        f.append(&vec![0u8; 4 * 1024 * 1024]).unwrap();
        let start = Instant::now();
        f.sync().unwrap();
        // 42 ms worth of work scaled to ~2.1 ms.
        assert!(start.elapsed() < ms(15));
    }

    #[test]
    fn precise_sleep_hits_short_targets() {
        for target in [Duration::ZERO, Duration::from_micros(50), ms(1)] {
            let start = Instant::now();
            precise_sleep(target);
            let elapsed = start.elapsed();
            assert!(elapsed >= target);
            assert!(elapsed < target + ms(5), "overslept: {elapsed:?}");
        }
    }
}
